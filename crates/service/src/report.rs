//! Reports: per-job results and the whole-service aggregate.
//!
//! Every submitted job produces exactly one [`JobReport`] — cancelled
//! and budget-exhausted jobs included (they carry
//! [`BmcResult::Unknown`], they are never dropped). The
//! [`ServiceReport`] folds all job stats with [`RunStats::absorb`]
//! (peaks maxed, durations and solver effort summed) and splits the
//! wall clock into queue wait and solve time.

use std::time::Duration;

use sebmc::{BmcResult, Certificate, RunStats};

/// One failed attempt of a job, preserved verbatim in the job's report
/// — a panic, spurious cancellation, or expired attempt deadline never
/// silently discards the work that led up to it.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Which attempt failed (1-based).
    pub attempt: u32,
    /// The deepest bound *decided* before the failure (`None` when the
    /// attempt failed before deciding anything).
    pub bound_reached: Option<usize>,
    /// Why the attempt failed: the truncated panic payload, `"spurious
    /// cancellation"`, or `"attempt deadline exceeded"`.
    pub reason: String,
    /// Partial run stats accumulated by the failed attempt (per-bound
    /// outcomes absorbed as they were decided; at most the in-flight
    /// bound's effort is lost to a panic).
    pub stats: RunStats,
}

/// Outcome and accounting of one job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The id handed out by `CheckService::submit`.
    pub job_id: usize,
    /// The job's label.
    pub name: String,
    /// The model's name.
    pub model: String,
    /// Engine names, in job order.
    pub engines: Vec<&'static str>,
    /// The job verdict: the first reachable bound's verdict, or
    /// `Unreachable` after a clean sweep to `max_bound`, or `Unknown`
    /// (budget exhausted / cancelled / service cancelled / skipped
    /// bounds).
    pub verdict: BmcResult,
    /// The decided bound, when `verdict` is `Reachable`.
    pub bound: Option<usize>,
    /// Bounds actually raced/checked.
    pub bounds_checked: usize,
    /// Bounds no selected engine supports (skipped, not failed).
    pub bounds_skipped: usize,
    /// Per-bound race winners `(bound, engine)` — for a single-engine
    /// job, every decided bound; for a portfolio, the engine whose
    /// verdict was shared at that bound.
    pub winners: Vec<(usize, &'static str)>,
    /// The byte cap the session actually ran under, after admission
    /// control (`min` of the job's and the service's caps).
    pub byte_cap: Option<usize>,
    /// Cumulative run stats — for a portfolio job this sums the racing
    /// effort of *all* engines, losers included.
    pub stats: RunStats,
    /// Certification summary across the job's decided bounds (present
    /// when the job ran under a certify budget on a proof-capable
    /// engine; for a portfolio, the chain of per-bound race winners).
    /// [`Certificate::fully_certified`] says whether every decided
    /// bound was machine-checked.
    pub certificate: Option<Certificate>,
    /// Path of the streamed witness file, when the service ran with a
    /// witness directory and this job was reachable — the in-memory
    /// trace is dropped in that case and `verdict` is
    /// `Reachable(None)`.
    pub witness_path: Option<String>,
    /// Steps of the streamed witness (the trace length the file holds).
    pub witness_steps: Option<usize>,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Wall-clock time on the worker (encode + solve across bounds,
    /// plus any admission deferrals and retry backoff).
    pub solve_time: Duration,
    /// Attempts the job took (1 for an untroubled run).
    pub attempts: u32,
    /// The bound the *last* retry resumed the sweep at (`None` when the
    /// job never retried). Retries never restart from bound 0 once a
    /// bound was decided.
    pub resumed_from: Option<usize>,
    /// Admission deferrals under memory pressure before the job ran.
    pub deferrals: usize,
    /// Whether memory pressure downgraded a portfolio job to its single
    /// first-listed engine.
    pub downgraded: bool,
    /// Whether the job exhausted every attempt and was quarantined (its
    /// id is on [`ServiceReport::quarantined`]; the verdict carries the
    /// last failure's reason).
    pub quarantined: bool,
    /// Every failed attempt, in order. Empty for an untroubled run.
    pub failures: Vec<FailureReport>,
    /// Path of the exported DRAT proof file, when the service ran with
    /// a proof directory and this single-engine job swept to a clean
    /// `Unreachable` verdict.
    pub proof_path: Option<String>,
    /// Whether this report was answered from the result cache: the
    /// verdict, bound, winners, certificate and artifact paths are the
    /// cold run's, `stats.solver_effort` is zero (no solving
    /// happened), and `engines` names the engines of the run that
    /// produced the verdict, not the ones this submission asked for.
    pub cached: bool,
    /// The scheduling priority the job was submitted with (0..=9).
    pub priority: u8,
}

impl JobReport {
    /// `"reachable"` / `"unreachable"` / `"unknown"` plus the Unknown
    /// reason, if any.
    pub fn verdict_parts(&self) -> (&'static str, Option<&str>) {
        match &self.verdict {
            BmcResult::Reachable(_) => ("reachable", None),
            BmcResult::Unreachable => ("unreachable", None),
            BmcResult::Unknown(r) => ("unknown", Some(r.as_str())),
        }
    }
}

/// Aggregate of one `CheckService::run`: every job's report plus the
/// service-level accounting.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Worker threads the pool ran with.
    pub workers: usize,
    /// Wall-clock time of the whole `run` call.
    pub wall: Duration,
    /// One report per submitted job, in submission order.
    pub jobs: Vec<JobReport>,
    /// All job stats folded with [`RunStats::absorb`]: durations and
    /// solver effort summed, formula sizes and memory peaks maxed.
    pub total: RunStats,
    /// Sum of all jobs' queue waits.
    pub queue_wait_total: Duration,
    /// Sum of all jobs' solve times (≥ `wall` when workers > 1).
    pub solve_total: Duration,
    /// Jobs that ended `Reachable`.
    pub reachable: usize,
    /// Jobs that ended `Unreachable`.
    pub unreachable: usize,
    /// Jobs that ended `Unknown` (budget, cancellation, skips).
    pub unknown: usize,
    /// Jobs whose certificate is fully certified (every decided bound
    /// machine-checked).
    pub jobs_certified: usize,
    /// All job certificates folded with [`Certificate::absorb`]
    /// (`None` when no job carried one).
    pub certificate: Option<Certificate>,
    /// Jobs that needed more than one attempt.
    pub jobs_retried: usize,
    /// The poison list: ids of jobs that exhausted every attempt. Their
    /// reports are still present in [`ServiceReport::jobs`] — nothing
    /// is dropped — this is the index of what needs human attention.
    pub quarantined: Vec<usize>,
    /// Jobs cancelled by the memory-pressure shedder.
    pub jobs_shed: usize,
    /// Portfolio jobs downgraded to a single engine under memory
    /// pressure.
    pub jobs_downgraded: usize,
    /// Jobs answered from the result cache (no solver effort spent).
    pub jobs_cached: usize,
    /// Highest pending-queue depth the run ever reached (0 when the
    /// aggregate was built without queue telemetry).
    pub queue_high_water: usize,
    /// Queue pops by *effective* (post-aging) priority level 0..=9 —
    /// how the scheduler actually spent its pickups.
    pub queue_pops: [u64; 10],
}

impl ServiceReport {
    /// Builds the aggregate from finished job reports.
    pub fn new(workers: usize, wall: Duration, jobs: Vec<JobReport>) -> Self {
        let mut total = RunStats::default();
        let mut queue_wait_total = Duration::ZERO;
        let mut solve_total = Duration::ZERO;
        let (mut reachable, mut unreachable, mut unknown) = (0, 0, 0);
        let mut jobs_certified = 0;
        let mut certificate: Option<Certificate> = None;
        let mut jobs_retried = 0;
        let mut quarantined = Vec::new();
        let mut jobs_shed = 0;
        let mut jobs_downgraded = 0;
        let mut jobs_cached = 0;
        for j in &jobs {
            total.absorb(&j.stats);
            queue_wait_total += j.queue_wait;
            solve_total += j.solve_time;
            match &j.verdict {
                BmcResult::Reachable(_) => reachable += 1,
                BmcResult::Unreachable => unreachable += 1,
                BmcResult::Unknown(r) => {
                    unknown += 1;
                    if r == "shed: memory pressure" {
                        jobs_shed += 1;
                    }
                }
            }
            if j.certificate
                .as_ref()
                .is_some_and(sebmc::Certificate::fully_certified)
            {
                jobs_certified += 1;
            }
            Certificate::fold_into(&mut certificate, j.certificate.as_ref());
            if j.attempts > 1 {
                jobs_retried += 1;
            }
            if j.quarantined {
                quarantined.push(j.job_id);
            }
            if j.downgraded {
                jobs_downgraded += 1;
            }
            if j.cached {
                jobs_cached += 1;
            }
        }
        ServiceReport {
            workers,
            wall,
            jobs,
            total,
            queue_wait_total,
            solve_total,
            reachable,
            unreachable,
            unknown,
            jobs_certified,
            certificate,
            jobs_retried,
            quarantined,
            jobs_shed,
            jobs_downgraded,
            jobs_cached,
            queue_high_water: 0,
            queue_pops: [0; 10],
        }
    }

    /// Attaches the scheduler's queue telemetry (see
    /// [`crate::ServiceHandle::queue_telemetry`]).
    #[must_use]
    pub fn with_queue_telemetry(mut self, high_water: usize, pops: [u64; 10]) -> Self {
        self.queue_high_water = high_water;
        self.queue_pops = pops;
        self
    }

    /// Jobs per second of wall clock (throughput of this run).
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.jobs.len() as f64 / self.wall.as_secs_f64()
    }

    /// Renders the whole report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.jobs.len() * 256);
        let quarantined_ids = self
            .quarantined
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"workers\":{},\"wall_ms\":{},\"jobs_total\":{},\
             \"reachable\":{},\"unreachable\":{},\"unknown\":{},\
             \"jobs_certified\":{},\"certificate\":{},\
             \"jobs_retried\":{},\"jobs_quarantined\":{},\"quarantined\":[{quarantined_ids}],\
             \"jobs_shed\":{},\"jobs_downgraded\":{},\"jobs_cached\":{},\
             \"queue_high_water\":{},\"queue_pops\":[{pops}],\
             \"queue_wait_ms_total\":{},\"solve_ms_total\":{},\
             \"jobs_per_sec\":{:.3},\"total_stats\":{},\"jobs\":[",
            self.workers,
            self.wall.as_millis(),
            self.jobs.len(),
            self.reachable,
            self.unreachable,
            self.unknown,
            self.jobs_certified,
            opt_cert_json(&self.certificate),
            self.jobs_retried,
            self.quarantined.len(),
            self.jobs_shed,
            self.jobs_downgraded,
            self.jobs_cached,
            self.queue_high_water,
            self.queue_wait_total.as_millis(),
            self.solve_total.as_millis(),
            self.jobs_per_sec(),
            stats_json(&self.total),
            pops = self
                .queue_pops
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
        ));
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&job_json(j));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders [`RunStats`] as one JSON object (the CLI `--json` shape).
pub fn stats_json(s: &RunStats) -> String {
    format!(
        "{{\"duration_ms\":{},\"encode_vars\":{},\"encode_clauses\":{},\
         \"encode_lits\":{},\"peak_formula_lits\":{},\"peak_formula_bytes\":{},\
         \"peak_watch_bytes\":{},\"peak_proof_bytes\":{},\"latches_swept\":{},\
         \"coi_latches\":{},\"inputs_removed\":{},\"solver_effort\":{},\
         \"bounds_checked\":{}}}",
        s.duration.as_millis(),
        s.encode_vars,
        s.encode_clauses,
        s.encode_lits,
        s.peak_formula_lits,
        s.peak_formula_bytes,
        s.peak_watch_bytes,
        s.peak_proof_bytes,
        s.latches_swept,
        s.coi_latches,
        s.inputs_removed,
        s.solver_effort,
        s.bounds_checked,
    )
}

/// Renders a [`Certificate`] as one JSON object (shared by the batch
/// report and the CLI `--json` output).
pub fn cert_json(c: &Certificate) -> String {
    format!(
        "{{\"certified\":{},\"bounds_attempted\":{},\"bounds_certified\":{},\
         \"originals\":{},\"lemmas_checked\":{},\"deletions\":{},\
         \"failed_checks\":{},\"missing_deletes\":{},\"unsat_proofs\":{},\
         \"proof_bytes\":{},\"peak_active_clauses\":{}}}",
        c.fully_certified(),
        c.bounds_attempted,
        c.bounds_certified,
        c.originals,
        c.lemmas_checked,
        c.deletions,
        c.failed_checks,
        c.missing_deletes,
        c.unsat_proofs,
        c.proof_bytes,
        c.peak_active_clauses,
    )
}

/// `cert_json` for an optional certificate (`null` when absent).
fn opt_cert_json(c: &Option<Certificate>) -> String {
    c.as_ref().map_or("null".into(), cert_json)
}

/// Renders one [`JobReport`] as a JSON object — the shape the batch
/// report embeds under `"jobs"` and the wire protocol pushes as the
/// `"report"` payload of a result frame.
pub fn job_json(j: &JobReport) -> String {
    let (verdict, reason) = j.verdict_parts();
    let reason_s = reason.map_or("null".into(), |r| format!("\"{}\"", json_escape(r)));
    let bound_s = j.bound.map_or("null".into(), |b| b.to_string());
    let cap_s = j.byte_cap.map_or("null".into(), |c| c.to_string());
    let witness_s = j
        .witness_path
        .as_deref()
        .map_or("null".into(), |p| format!("\"{}\"", json_escape(p)));
    let steps_s = j.witness_steps.map_or("null".into(), |n| n.to_string());
    let engines = j
        .engines
        .iter()
        .map(|e| format!("\"{}\"", json_escape(e)))
        .collect::<Vec<_>>()
        .join(",");
    let winners = j
        .winners
        .iter()
        .map(|(k, e)| format!("[{k},\"{}\"]", json_escape(e)))
        .collect::<Vec<_>>()
        .join(",");
    let resumed_s = j.resumed_from.map_or("null".into(), |b| b.to_string());
    let proof_s = j
        .proof_path
        .as_deref()
        .map_or("null".into(), |p| format!("\"{}\"", json_escape(p)));
    let failures = j
        .failures
        .iter()
        .map(failure_json)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"id\":{},\"name\":\"{}\",\"model\":\"{}\",\"engines\":[{engines}],\
         \"verdict\":\"{verdict}\",\"reason\":{reason_s},\"bound\":{bound_s},\
         \"bounds_checked\":{},\"bounds_skipped\":{},\"byte_cap\":{cap_s},\
         \"certificate\":{},\"witness_path\":{witness_s},\"witness_steps\":{steps_s},\
         \"proof_path\":{proof_s},\
         \"queue_wait_ms\":{},\"solve_ms\":{},\
         \"attempts\":{},\"resumed_from\":{resumed_s},\"deferrals\":{},\
         \"downgraded\":{},\"quarantined\":{},\"cached\":{},\"priority\":{},\
         \"failures\":[{failures}],\
         \"winners\":[{winners}],\"stats\":{}}}",
        j.job_id,
        json_escape(&j.name),
        json_escape(&j.model),
        j.bounds_checked,
        j.bounds_skipped,
        opt_cert_json(&j.certificate),
        j.queue_wait.as_millis(),
        j.solve_time.as_millis(),
        j.attempts,
        j.deferrals,
        j.downgraded,
        j.quarantined,
        j.cached,
        j.priority,
        stats_json(&j.stats),
    )
}

/// Renders one [`FailureReport`] as JSON.
fn failure_json(f: &FailureReport) -> String {
    let bound_s = f.bound_reached.map_or("null".into(), |b| b.to_string());
    format!(
        "{{\"attempt\":{},\"bound_reached\":{bound_s},\"reason\":\"{}\",\"stats\":{}}}",
        f.attempt,
        json_escape(&f.reason),
        stats_json(&f.stats),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(verdict: BmcResult) -> JobReport {
        JobReport {
            job_id: 0,
            name: "j".into(),
            model: "m".into(),
            engines: vec!["jsat"],
            verdict,
            bound: None,
            bounds_checked: 1,
            bounds_skipped: 0,
            winners: vec![],
            byte_cap: None,
            stats: RunStats {
                duration: Duration::from_millis(3),
                solver_effort: 5,
                peak_formula_bytes: 100,
                bounds_checked: 1,
                ..RunStats::default()
            },
            certificate: None,
            witness_path: None,
            witness_steps: None,
            queue_wait: Duration::from_millis(1),
            solve_time: Duration::from_millis(2),
            attempts: 1,
            resumed_from: None,
            deferrals: 0,
            downgraded: false,
            quarantined: false,
            failures: Vec::new(),
            proof_path: None,
            cached: false,
            priority: 4,
        }
    }

    #[test]
    fn aggregate_sums_effort_and_maxes_peaks() {
        let mut a = report(BmcResult::Unreachable);
        a.stats.peak_formula_bytes = 50;
        let b = report(BmcResult::Unknown("cancelled".into()));
        let r = ServiceReport::new(2, Duration::from_millis(10), vec![a, b]);
        assert_eq!(r.total.solver_effort, 10);
        assert_eq!(r.total.peak_formula_bytes, 100, "peaks maxed");
        assert_eq!(r.total.bounds_checked, 2);
        assert_eq!((r.reachable, r.unreachable, r.unknown), (0, 1, 1));
        assert_eq!(r.queue_wait_total, Duration::from_millis(2));
    }

    #[test]
    fn json_is_well_formed_and_escapes_reasons() {
        let j = report(BmcResult::Unknown("a \"quoted\" reason".into()));
        let r = ServiceReport::new(1, Duration::from_millis(5), vec![j]);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workers\":1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"total_stats\":{"));
        assert!(json.contains("\"jobs\":[{"));
        assert!(json.contains("\"peak_proof_bytes\":0"));
        assert!(json.contains("\"certificate\":null"));
        assert!(json.contains("\"witness_path\":null"));
    }

    #[test]
    fn failure_semantics_aggregate_and_render() {
        let mut retried = report(BmcResult::Unreachable);
        retried.attempts = 2;
        retried.resumed_from = Some(3);
        retried.failures.push(FailureReport {
            attempt: 1,
            bound_reached: Some(2),
            reason: "engine panicked: jsat: boom".into(),
            stats: RunStats::default(),
        });
        let mut quarantined = report(BmcResult::Unknown("engine panicked: jsat: boom".into()));
        quarantined.job_id = 1;
        quarantined.attempts = 3;
        quarantined.quarantined = true;
        let mut shed = report(BmcResult::Unknown("shed: memory pressure".into()));
        shed.job_id = 2;
        shed.deferrals = 4;
        let mut downgraded = report(BmcResult::Unreachable);
        downgraded.job_id = 3;
        downgraded.downgraded = true;
        let r = ServiceReport::new(
            2,
            Duration::from_millis(10),
            vec![retried, quarantined, shed, downgraded],
        );
        assert_eq!(r.jobs_retried, 2, "retried + quarantined both retried");
        assert_eq!(r.quarantined, vec![1]);
        assert_eq!(r.jobs_shed, 1);
        assert_eq!(r.jobs_downgraded, 1);
        let json = r.to_json();
        assert!(json.contains("\"jobs_quarantined\":1"));
        assert!(json.contains("\"quarantined\":[1]"));
        assert!(json.contains("\"jobs_shed\":1"));
        assert!(json.contains("\"jobs_downgraded\":1"));
        assert!(json.contains("\"resumed_from\":3"));
        assert!(json.contains("\"failures\":[{\"attempt\":1,\"bound_reached\":2"));
        assert!(json.contains("engine panicked: jsat: boom"));
    }

    #[test]
    fn cached_jobs_are_counted_and_rendered() {
        let mut hit = report(BmcResult::Unreachable);
        hit.cached = true;
        hit.priority = 9;
        let cold = report(BmcResult::Unreachable);
        let r = ServiceReport::new(1, Duration::from_millis(5), vec![hit, cold]);
        assert_eq!(r.jobs_cached, 1);
        let json = r.to_json();
        assert!(json.contains("\"jobs_cached\":1"));
        assert!(json.contains("\"cached\":true"));
        assert!(json.contains("\"priority\":9"));
    }

    #[test]
    fn queue_telemetry_rides_the_aggregate() {
        let r = ServiceReport::new(
            1,
            Duration::from_millis(5),
            vec![report(BmcResult::Unreachable)],
        );
        assert_eq!(r.queue_high_water, 0, "zero without telemetry attached");
        let mut pops = [0u64; 10];
        pops[4] = 3;
        pops[9] = 1;
        let r = r.with_queue_telemetry(7, pops);
        assert_eq!(r.queue_high_water, 7);
        let json = r.to_json();
        assert!(json.contains("\"queue_high_water\":7"));
        assert!(json.contains("\"queue_pops\":[0,0,0,0,3,0,0,0,0,1]"));
    }

    #[test]
    fn certificates_aggregate_across_jobs() {
        let mut a = report(BmcResult::Unreachable);
        a.certificate = Some(Certificate {
            bounds_attempted: 3,
            bounds_certified: 3,
            lemmas_checked: 10,
            proof_bytes: 500,
            ..Certificate::default()
        });
        let mut b = report(BmcResult::Unreachable);
        b.certificate = Some(Certificate {
            bounds_attempted: 2,
            bounds_certified: 1, // one bound escaped certification
            lemmas_checked: 4,
            proof_bytes: 200,
            ..Certificate::default()
        });
        let c = report(BmcResult::Unknown("cancelled".into())); // no cert
        let r = ServiceReport::new(1, Duration::from_millis(5), vec![a, b, c]);
        assert_eq!(r.jobs_certified, 1, "only the fully-certified job");
        let total = r.certificate.as_ref().expect("folded certificate");
        assert_eq!(total.bounds_attempted, 5);
        assert_eq!(total.bounds_certified, 4);
        assert_eq!(total.proof_bytes, 700);
        assert!(!total.fully_certified());
        let json = r.to_json();
        assert!(json.contains("\"jobs_certified\":1"));
        assert!(json.contains("\"certificate\":{\"certified\":false"));
    }
}
