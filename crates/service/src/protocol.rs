//! The `sebmc serve` wire protocol: line-delimited JSON over TCP.
//!
//! One frame per line, each a single JSON object, in both directions
//! (see `docs/protocol.md` for the full specification). Client → server
//! frames are either **commands** — an object with an `"op"` key
//! (`ping`, `shutdown`) — or **submissions**: a [`JobSpec`] in its JSON
//! encoding, exactly the object [`JobSpec::to_json`] produces. There is
//! no separate wire schema for jobs; the job-file format, the batch
//! CLI, and the socket all decode through [`JobSpec`].
//!
//! Server → client frames always carry an `"op"`:
//!
//! * `hello` — sent once on connect (protocol version, worker count).
//! * `accepted` / `error` — one per client frame, in order.
//! * `report` — pushed, possibly between a request and its response,
//!   when one of *this connection's* jobs finishes; the `"job"` payload
//!   is [`job_json`](crate::job_json).
//! * `pong`, `shutdown_ack` — command responses.
//!
//! This module holds the pieces both ends share: frame builders
//! ([`frames`]), a timeout-safe line reader ([`LineReader`] — unlike
//! `BufRead::read_line`, a read timeout does **not** lose a partial
//! line), and a small blocking client ([`WireClient`]) used by
//! `sebmc client` and the daemon tests.

use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use sebmc_logic::json::{obj, Json};

use crate::report::JobReport;
use crate::spec::JobSpec;

/// Protocol version sent in the `hello` frame; bumped on incompatible
/// changes.
pub const PROTO_VERSION: u64 = 1;

/// Builders for every server → client frame (and the client's command
/// frames). Each returns the rendered single-line JSON, newline not
/// included.
pub mod frames {
    use super::{obj, JobReport, Json, PROTO_VERSION};

    /// The connect-time greeting.
    pub fn hello(workers: usize, cache: bool) -> String {
        obj(vec![
            ("op", Json::Str("hello".into())),
            ("proto", Json::Num(PROTO_VERSION as f64)),
            ("workers", Json::Num(workers as f64)),
            ("cache", Json::Bool(cache)),
        ])
        .to_string()
    }

    /// A submission was queued (or answered from cache) under this id.
    pub fn accepted(job_id: usize) -> String {
        obj(vec![
            ("op", Json::Str("accepted".into())),
            ("job_id", Json::Num(job_id as f64)),
        ])
        .to_string()
    }

    /// A frame was refused; `message` says why.
    pub fn error(message: &str) -> String {
        obj(vec![
            ("op", Json::Str("error".into())),
            ("message", Json::Str(message.into())),
        ])
        .to_string()
    }

    /// Response to `ping`.
    pub fn pong() -> String {
        obj(vec![("op", Json::Str("pong".into()))]).to_string()
    }

    /// The shutdown command was accepted; the server stops after this.
    pub fn shutdown_ack(mode: &str) -> String {
        obj(vec![
            ("op", Json::Str("shutdown_ack".into())),
            ("mode", Json::Str(mode.into())),
        ])
        .to_string()
    }

    /// A finished job, pushed to the submitting connection. The `job`
    /// payload is the same object batch mode prints per job.
    pub fn report(r: &JobReport) -> String {
        format!(
            "{{\"op\":\"report\",\"job\":{}}}",
            crate::report::job_json(r)
        )
    }

    /// Response to `stats`: the daemon's telemetry snapshot
    /// (`snapshot` is [`sebmc_telemetry::Telemetry::snapshot_json`] —
    /// `{"uptime_ms":…,"metrics":{…}}`).
    pub fn stats(snapshot: &str) -> String {
        format!("{{\"op\":\"stats\",\"snapshot\":{snapshot}}}")
    }
}

/// What one [`LineReader::read_line`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line (newline stripped, `\r\n` tolerated).
    Line(String),
    /// The underlying read timed out; buffered partial input is kept
    /// and the next call resumes it.
    Timeout,
    /// The peer closed the connection (or the stream failed).
    Eof,
}

/// A line framer that survives read timeouts: bytes already received
/// for an incomplete line stay buffered across [`LineEvent::Timeout`]
/// events instead of being lost the way `BufRead::read_line` loses
/// them.
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    /// Wraps a stream (typically one with a read timeout set).
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// Reads until one full line, a timeout, or end of stream.
    pub fn read_line(&mut self) -> LineEvent {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return LineEvent::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return LineEvent::Timeout;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return LineEvent::Eof,
            }
        }
    }
}

/// A blocking protocol client over one TCP connection: `sebmc client`
/// and the daemon tests drive the server through this.
///
/// Report frames the server pushes while the client is waiting for a
/// command response are stashed and handed out by
/// [`WireClient::next_report`] in arrival order — nothing is dropped.
pub struct WireClient {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
    stashed: VecDeque<Json>,
    /// The `hello` frame received on connect.
    pub hello: Json,
}

/// How long each blocking socket read waits before the client rechecks
/// its deadline.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_millis(100);

fn io_err(msg: String) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg)
}

impl WireClient {
    /// Connects and consumes the server's `hello` frame.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        let reader = LineReader::new(stream.try_clone()?);
        let mut client = WireClient {
            stream,
            reader,
            stashed: VecDeque::new(),
            hello: Json::Null,
        };
        let hello = client
            .read_frame(Some(Duration::from_secs(10)))?
            .ok_or_else(|| io_err("no hello frame from server".into()))?;
        if hello.get("op").and_then(Json::as_str) != Some("hello") {
            return Err(io_err(format!("expected hello frame, got: {hello}")));
        }
        client.hello = hello;
        Ok(client)
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Reads the next frame of any kind (stashed reports first), up to
    /// `timeout` (`None` = wait forever). `Ok(None)` means timeout.
    fn read_frame(&mut self, timeout: Option<Duration>) -> io::Result<Option<Json>> {
        if let Some(frame) = self.stashed.pop_front() {
            return Ok(Some(frame));
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            match self.reader.read_line() {
                LineEvent::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    return Json::parse(&line)
                        .map(Some)
                        .map_err(|e| io_err(format!("bad frame from server: {e}")));
                }
                LineEvent::Timeout => {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            return Ok(None);
                        }
                    }
                }
                LineEvent::Eof => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
            }
        }
    }

    /// Reads frames until one that is *not* a pushed report arrives
    /// (reports are stashed for [`WireClient::next_report`]).
    fn read_response(&mut self, timeout: Option<Duration>) -> io::Result<Json> {
        // Don't let already-stashed reports satisfy a response read.
        let mut put_back = VecDeque::new();
        std::mem::swap(&mut put_back, &mut self.stashed);
        self.stashed = VecDeque::new();
        let result = loop {
            match self.read_frame(timeout)? {
                None => {
                    break Err(io::Error::new(
                        ErrorKind::TimedOut,
                        "timed out waiting for server response",
                    ));
                }
                Some(frame) => {
                    if frame.get("op").and_then(Json::as_str) == Some("report") {
                        put_back.push_back(frame);
                    } else {
                        break Ok(frame);
                    }
                }
            }
        };
        self.stashed = put_back;
        result
    }

    /// Submits a job; returns the server-assigned job id, or the
    /// server's refusal message in the inner `Err`.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Result<usize, String>> {
        let line = spec.to_json().to_string();
        self.send_line(&line)?;
        let resp = self.read_response(Some(Duration::from_secs(30)))?;
        match resp.get("op").and_then(Json::as_str) {
            Some("accepted") => {
                let id = resp
                    .get("job_id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| io_err(format!("accepted frame without job_id: {resp}")))?;
                Ok(Ok(id as usize))
            }
            Some("error") => Ok(Err(resp
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string())),
            _ => Err(io_err(format!("unexpected response to submit: {resp}"))),
        }
    }

    /// Waits up to `timeout` (`None` = forever) for the next pushed
    /// report frame; returns its `"job"` payload. `Ok(None)` on
    /// timeout.
    pub fn next_report(&mut self, timeout: Option<Duration>) -> io::Result<Option<Json>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let left = match deadline {
                None => None,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Ok(None);
                    }
                    Some(left)
                }
            };
            match self.read_frame(left)? {
                None => return Ok(None),
                Some(frame) => {
                    if frame.get("op").and_then(Json::as_str) == Some("report") {
                        let job = frame
                            .get("job")
                            .cloned()
                            .ok_or_else(|| io_err("report frame without job".into()))?;
                        return Ok(Some(job));
                    }
                    // Unsolicited non-report frames (none today) are
                    // skipped rather than failed: forward compatible.
                }
            }
        }
    }

    /// Round-trips a `stats` command; returns the snapshot payload
    /// (`{"uptime_ms":…,"metrics":{…}}`).
    pub fn stats(&mut self) -> io::Result<Json> {
        self.send_line(&obj(vec![("op", Json::Str("stats".into()))]).to_string())?;
        let resp = self.read_response(Some(Duration::from_secs(10)))?;
        if resp.get("op").and_then(Json::as_str) == Some("stats") {
            resp.get("snapshot")
                .cloned()
                .ok_or_else(|| io_err(format!("stats frame without snapshot: {resp}")))
        } else {
            Err(io_err(format!("unexpected response to stats: {resp}")))
        }
    }

    /// Round-trips a `ping`.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send_line(&obj(vec![("op", Json::Str("ping".into()))]).to_string())?;
        let resp = self.read_response(Some(Duration::from_secs(10)))?;
        if resp.get("op").and_then(Json::as_str) == Some("pong") {
            Ok(())
        } else {
            Err(io_err(format!("unexpected response to ping: {resp}")))
        }
    }

    /// Asks the server to shut down (`mode` is `"graceful"` or
    /// `"now"`) and waits for the acknowledgement.
    pub fn shutdown(&mut self, mode: &str) -> io::Result<()> {
        self.send_line(
            &obj(vec![
                ("op", Json::Str("shutdown".into())),
                ("mode", Json::Str(mode.into())),
            ])
            .to_string(),
        )?;
        let resp = self.read_response(Some(Duration::from_secs(10)))?;
        if resp.get("op").and_then(Json::as_str) == Some("shutdown_ack") {
            Ok(())
        } else {
            Err(io_err(format!("unexpected response to shutdown: {resp}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Read that yields scripted results.
    struct Script(Vec<io::Result<Vec<u8>>>);

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0);
            }
            match self.0.remove(0) {
                Ok(bytes) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Err(e) => Err(e),
            }
        }
    }

    #[test]
    fn line_reader_survives_timeouts_mid_line() {
        let mut r = LineReader::new(Script(vec![
            Ok(b"{\"op\":".to_vec()),
            Err(io::Error::new(ErrorKind::WouldBlock, "timeout")),
            Ok(b"\"ping\"}\n{\"op\":\"pong\"}\r\n".to_vec()),
        ]));
        assert_eq!(r.read_line(), LineEvent::Timeout);
        assert_eq!(r.read_line(), LineEvent::Line("{\"op\":\"ping\"}".into()));
        assert_eq!(r.read_line(), LineEvent::Line("{\"op\":\"pong\"}".into()));
        assert_eq!(r.read_line(), LineEvent::Eof);
    }

    #[test]
    fn frames_render_one_line_json() {
        for f in [
            frames::hello(4, true),
            frames::accepted(7),
            frames::error("overloaded: queue full"),
            frames::pong(),
            frames::shutdown_ack("graceful"),
            frames::stats("{\"uptime_ms\":12,\"metrics\":{\"jobs_submitted\":3}}"),
        ] {
            assert!(!f.contains('\n'), "frame must be one line: {f}");
            let parsed = Json::parse(&f).expect("frame parses");
            assert!(parsed.get("op").is_some(), "frame has an op: {f}");
        }
        assert_eq!(
            Json::parse(&frames::accepted(7))
                .unwrap()
                .get("job_id")
                .and_then(Json::as_u64),
            Some(7)
        );
    }
}
