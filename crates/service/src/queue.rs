//! The pending-job queue: priority- and deadline-aware, with aging.
//!
//! PR 6's service drained a plain FIFO `VecDeque`. Under a long-lived
//! daemon that is wrong twice over: an urgent job submitted behind a
//! deep backlog waits for everything ahead of it, and one chatty
//! client can monopolise the pool. This queue picks the next job by:
//!
//! 1. **Effective priority**, highest first — the job's submitted
//!    priority (0..=9, default 4) *aged upward* one level per
//!    [`aging`](crate::ServiceConfig::priority_aging) interval spent
//!    waiting (capped at 9), so a priority-0 job eventually outranks
//!    fresh priority-9 traffic instead of starving.
//! 2. **Deadline**, earliest first — among equal priorities, a job
//!    with a tighter whole-job deadline goes first (none = last).
//! 3. **Client fairness**, least-loaded first — among those, prefer
//!    the client with the fewest jobs currently running.
//! 4. **Submission order** — final tie-break, which makes a queue of
//!    all-default submissions behave exactly like PR 6's FIFO (the
//!    reproducibility of the fault drills depends on that).
//!
//! The container is a plain `Vec` with an `O(n)` scan per pop: the
//! queue lock is held for the scan, so selection is atomic, and for
//! the queue depths this service shields (hundreds), a scan beats the
//! constant factors of a heap that would need lazy re-prioritisation
//! for aging anyway.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::cache::CacheKey;
use crate::job::Job;

/// One queued job with its scheduling envelope.
pub(crate) struct PendingJob {
    /// The id handed back by `submit` (index into the done map).
    pub id: usize,
    /// The job itself.
    pub job: Job,
    /// When the job was submitted (queue-wait clock, aging clock).
    pub submitted: Instant,
    /// The submitting client (0 = the in-process caller).
    pub client: u64,
    /// Global submission sequence (final FIFO tie-break).
    pub seq: u64,
    /// Result-cache key, precomputed at submission (None when the
    /// cache is disabled): the finished report is inserted under it.
    pub cache_key: Option<CacheKey>,
}

impl PendingJob {
    /// The job's priority after aging: one level per `aging` interval
    /// waited, capped at 9.
    pub(crate) fn effective_priority(&self, now: Instant, aging: Duration) -> u8 {
        let waited = now.saturating_duration_since(self.submitted);
        let levels = if aging.is_zero() {
            0
        } else {
            (waited.as_millis() / aging.as_millis().max(1)) as u64
        };
        self.job.priority.saturating_add(levels.min(9) as u8).min(9)
    }
}

/// The scheduling key: larger sorts sooner. Priority descending,
/// deadline ascending (`None` last), client load ascending, sequence
/// ascending.
fn rank(p: &PendingJob, now: Instant, aging: Duration, running: &HashMap<u64, usize>) -> impl Ord {
    let load = running.get(&p.client).copied().unwrap_or(0);
    (
        p.effective_priority(now, aging),
        std::cmp::Reverse(p.job.retry.job_deadline.unwrap_or(Duration::MAX)),
        std::cmp::Reverse(load),
        std::cmp::Reverse(p.seq),
    )
}

/// The pending queue (externally synchronised: the service handle
/// holds it under its queue mutex).
#[derive(Default)]
pub(crate) struct JobQueue {
    items: Vec<PendingJob>,
}

impl JobQueue {
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn push(&mut self, p: PendingJob) {
        self.items.push(p);
    }

    /// Removes and returns the best-ranked job, given each client's
    /// current in-flight count.
    pub fn pop(
        &mut self,
        now: Instant,
        aging: Duration,
        running: &HashMap<u64, usize>,
    ) -> Option<PendingJob> {
        let best = self
            .items
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| rank(p, now, aging, running))?
            .0;
        Some(self.items.remove(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineKind, Job, RetryPolicy};
    use sebmc_model::builders::traffic_light;

    fn pending(id: usize, priority: u8, seq: u64) -> PendingJob {
        PendingJob {
            id,
            job: Job::new(traffic_light(), vec![EngineKind::Jsat], 2).with_priority(priority),
            submitted: Instant::now(),
            client: 0,
            seq,
            cache_key: None,
        }
    }

    const AGING: Duration = Duration::from_millis(250);

    #[test]
    fn equal_priorities_pop_in_submission_order() {
        let mut q = JobQueue::default();
        for i in 0..4 {
            q.push(pending(i, 4, i as u64));
        }
        let now = Instant::now();
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(now, AGING, &HashMap::new()))
            .map(|p| p.id)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3], "FIFO preserved at equal priority");
    }

    #[test]
    fn higher_priority_jumps_the_queue() {
        let mut q = JobQueue::default();
        q.push(pending(0, 0, 0));
        q.push(pending(1, 9, 1));
        q.push(pending(2, 0, 2));
        let now = Instant::now();
        assert_eq!(q.pop(now, AGING, &HashMap::new()).unwrap().id, 1);
        assert_eq!(q.pop(now, AGING, &HashMap::new()).unwrap().id, 0);
    }

    #[test]
    fn aging_lifts_a_starved_low_priority_job() {
        let mut q = JobQueue::default();
        let mut old = pending(0, 0, 0);
        // Submitted long enough ago to age 0 → 9.
        old.submitted = Instant::now() - Duration::from_secs(10);
        q.push(old);
        q.push(pending(1, 8, 1));
        let now = Instant::now();
        assert_eq!(
            q.pop(now, AGING, &HashMap::new()).unwrap().id,
            0,
            "aged priority-0 job outranks fresh priority-8"
        );
    }

    #[test]
    fn earlier_deadline_wins_at_equal_priority() {
        let mut q = JobQueue::default();
        let mut relaxed = pending(0, 4, 0);
        relaxed.job.retry = RetryPolicy {
            job_deadline: Some(Duration::from_secs(60)),
            ..RetryPolicy::default()
        };
        let mut tight = pending(1, 4, 1);
        tight.job.retry = RetryPolicy {
            job_deadline: Some(Duration::from_secs(1)),
            ..RetryPolicy::default()
        };
        q.push(relaxed);
        q.push(tight);
        q.push(pending(2, 4, 2)); // no deadline: last
        let now = Instant::now();
        assert_eq!(q.pop(now, AGING, &HashMap::new()).unwrap().id, 1);
        assert_eq!(q.pop(now, AGING, &HashMap::new()).unwrap().id, 0);
        assert_eq!(q.pop(now, AGING, &HashMap::new()).unwrap().id, 2);
    }

    #[test]
    fn less_loaded_client_wins_at_equal_priority_and_deadline() {
        let mut q = JobQueue::default();
        let mut a = pending(0, 4, 0);
        a.client = 1; // submitted first, but client 1 hogs the pool
        let mut b = pending(1, 4, 1);
        b.client = 2;
        q.push(a);
        q.push(b);
        let running = HashMap::from([(1u64, 3usize), (2u64, 0usize)]);
        let now = Instant::now();
        assert_eq!(
            q.pop(now, AGING, &running).unwrap().id,
            1,
            "idle client's job preferred over busy client's earlier one"
        );
    }
}
