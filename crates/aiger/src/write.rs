//! AIGER writing: ASCII (`aag`) and binary (`aig`).

use std::io::{self, Write};

use crate::format::{AigerFile, AigerReset};

fn reset_token(lit: u32, reset: AigerReset) -> Option<u32> {
    match reset {
        AigerReset::Zero => None,
        AigerReset::One => Some(1),
        AigerReset::Uninitialized => Some(lit),
    }
}

fn write_trailer<W: Write>(file: &AigerFile, mut w: W) -> io::Result<()> {
    for (kind, pos, name) in &file.symbols {
        writeln!(w, "{kind}{pos} {name}")?;
    }
    if !file.comments.is_empty() {
        writeln!(w, "c")?;
        for line in &file.comments {
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

fn header_counts(file: &AigerFile) -> String {
    let base = format!(
        "{} {} {} {} {}",
        file.max_var,
        file.inputs.len(),
        file.latches.len(),
        file.outputs.len(),
        file.ands.len()
    );
    if file.bad.is_empty() && file.constraints.is_empty() {
        base
    } else {
        format!("{base} {} {}", file.bad.len(), file.constraints.len())
    }
}

/// Writes the ASCII (`aag`) format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_ascii<W: Write>(file: &AigerFile, mut writer: W) -> io::Result<()> {
    writeln!(writer, "aag {}", header_counts(file))?;
    for &i in &file.inputs {
        writeln!(writer, "{i}")?;
    }
    for l in &file.latches {
        match reset_token(l.lit, l.reset) {
            None => writeln!(writer, "{} {}", l.lit, l.next)?,
            Some(r) => writeln!(writer, "{} {} {r}", l.lit, l.next)?,
        }
    }
    for &o in &file.outputs {
        writeln!(writer, "{o}")?;
    }
    for &b in &file.bad {
        writeln!(writer, "{b}")?;
    }
    for &c in &file.constraints {
        writeln!(writer, "{c}")?;
    }
    for a in &file.ands {
        writeln!(writer, "{} {} {}", a.lhs, a.rhs0, a.rhs1)?;
    }
    write_trailer(file, writer)
}

/// Renders the ASCII format as a string.
pub fn to_ascii_string(file: &AigerFile) -> String {
    let mut buf = Vec::new();
    write_ascii(file, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("aag output is ASCII")
}

/// Writes the binary (`aig`) format.
///
/// The file must be in canonical binary order: inputs are literals
/// `2..=2I`, latches `2(I+1)..=2(I+L)`, AND gates `2(I+L+1)..` in
/// ascending order with `lhs > rhs0 ≥ rhs1`. Files produced by
/// [`crate::convert::model_to_aiger`] satisfy this;
/// [`reencode_binary_order`] normalizes arbitrary files.
///
/// # Errors
///
/// Returns `io::ErrorKind::InvalidInput` if the file is not in
/// canonical order, or propagates writer errors.
pub fn write_binary<W: Write>(file: &AigerFile, mut writer: W) -> io::Result<()> {
    let check = |ok: bool, what: &str| {
        if ok {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("aiger file not in canonical binary order: {what}"),
            ))
        }
    };
    let ni = file.inputs.len() as u32;
    let nl = file.latches.len() as u32;
    for (i, &lit) in file.inputs.iter().enumerate() {
        check(lit == 2 * (i as u32 + 1), "inputs must be 2,4,…")?;
    }
    for (i, l) in file.latches.iter().enumerate() {
        check(
            l.lit == 2 * (ni + i as u32 + 1),
            "latches must follow inputs",
        )?;
    }
    for (i, a) in file.ands.iter().enumerate() {
        check(
            a.lhs == 2 * (ni + nl + i as u32 + 1),
            "ands must follow latches",
        )?;
        check(a.rhs0 >= a.rhs1, "rhs0 >= rhs1")?;
        check(a.lhs > a.rhs0, "lhs > rhs0")?;
    }
    check(
        file.max_var == ni + nl + file.ands.len() as u32,
        "M = I+L+A",
    )?;

    writeln!(writer, "aig {}", header_counts(file))?;
    for l in &file.latches {
        match reset_token(l.lit, l.reset) {
            None => writeln!(writer, "{}", l.next)?,
            Some(r) => writeln!(writer, "{} {r}", l.next)?,
        }
    }
    for &o in &file.outputs {
        writeln!(writer, "{o}")?;
    }
    for &b in &file.bad {
        writeln!(writer, "{b}")?;
    }
    for &c in &file.constraints {
        writeln!(writer, "{c}")?;
    }
    for a in &file.ands {
        for mut delta in [a.lhs - a.rhs0, a.rhs0 - a.rhs1] {
            loop {
                let byte = (delta & 0x7f) as u8;
                delta >>= 7;
                if delta == 0 {
                    writer.write_all(&[byte])?;
                    break;
                }
                writer.write_all(&[byte | 0x80])?;
            }
        }
    }
    write_trailer(file, writer)
}

/// Renders the binary format into a byte vector.
///
/// # Errors
///
/// Same conditions as [`write_binary`].
pub fn to_binary_vec(file: &AigerFile) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    write_binary(file, &mut buf)?;
    Ok(buf)
}

/// Renumbers an arbitrary valid AIGER file into canonical binary order
/// (inputs first, then latches, then topologically sorted ANDs).
pub fn reencode_binary_order(file: &AigerFile) -> AigerFile {
    let mut map: Vec<u32> = vec![u32::MAX; file.max_var as usize + 1];
    map[0] = 0;
    let mut next_var = 1u32;
    for &i in &file.inputs {
        map[(i >> 1) as usize] = next_var;
        next_var += 1;
    }
    for l in &file.latches {
        map[(l.lit >> 1) as usize] = next_var;
        next_var += 1;
    }
    // ANDs are already topologically ordered (validated); keep order.
    for a in &file.ands {
        map[(a.lhs >> 1) as usize] = next_var;
        next_var += 1;
    }
    let tr = |lit: u32| -> u32 {
        let var = map[(lit >> 1) as usize];
        debug_assert_ne!(var, u32::MAX, "literal {lit} unmapped");
        var << 1 | (lit & 1)
    };
    let mut out = AigerFile {
        max_var: next_var - 1,
        inputs: file.inputs.iter().map(|&l| tr(l)).collect(),
        latches: file
            .latches
            .iter()
            .map(|l| crate::format::AigerLatch {
                lit: tr(l.lit),
                next: tr(l.next),
                reset: l.reset,
            })
            .collect(),
        outputs: file.outputs.iter().map(|&l| tr(l)).collect(),
        bad: file.bad.iter().map(|&l| tr(l)).collect(),
        constraints: file.constraints.iter().map(|&l| tr(l)).collect(),
        ands: file
            .ands
            .iter()
            .map(|a| {
                let (r0, r1) = (tr(a.rhs0), tr(a.rhs1));
                crate::format::AigerAnd {
                    lhs: tr(a.lhs),
                    rhs0: r0.max(r1),
                    rhs1: r0.min(r1),
                }
            })
            .collect(),
        symbols: file.symbols.clone(),
        comments: file.comments.clone(),
    };
    debug_assert_eq!(out.validate(), Ok(()));
    out.max_var = next_var - 1;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::{parse_ascii, parse_binary};

    const TOGGLE: &str = "aag 1 0 1 2 0\n2 3\n2\n3\nl0 toggle\nc\nhello\n";

    #[test]
    fn ascii_round_trip() {
        let f = parse_ascii(TOGGLE).unwrap();
        assert_eq!(to_ascii_string(&f), TOGGLE);
    }

    #[test]
    fn ascii_round_trip_with_19_sections() {
        let text = "aag 2 1 1 0 0 1 1\n2\n4 2 4\n4\n2\n";
        let f = parse_ascii(text).unwrap();
        assert_eq!(to_ascii_string(&f), text);
    }

    #[test]
    fn binary_round_trip() {
        let text = "aag 3 1 1 0 1\n2\n4 6\n6 4 2\n";
        let f = parse_ascii(text).unwrap();
        let bytes = to_binary_vec(&f).unwrap();
        let g = parse_binary(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn binary_rejects_non_canonical() {
        // Inputs out of order.
        let f = parse_ascii("aag 2 2 0 1 0\n4\n2\n4\n").unwrap();
        let e = to_binary_vec(&f).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn reencode_normalizes_for_binary() {
        let f = parse_ascii("aag 2 2 0 1 0\n4\n2\n4\n").unwrap();
        let g = reencode_binary_order(&f);
        let bytes = to_binary_vec(&g).unwrap();
        let h = parse_binary(&bytes).unwrap();
        assert_eq!(h.inputs, vec![2, 4]);
        // The output literal followed its input through the renumbering:
        // original output 4 was input #0 (literal 4), which maps to 2.
        assert_eq!(h.outputs, vec![2]);
    }

    #[test]
    fn multibyte_delta_round_trip() {
        // Wide gap between gate and operands forces multi-byte deltas.
        let mut text = String::from("aag 130 128 0 1 2\n");
        for i in 1..=128 {
            text.push_str(&format!("{}\n", 2 * i));
        }
        text.push_str("260\n");
        text.push_str("258 4 2\n");
        text.push_str("260 258 256\n");
        let f = parse_ascii(&text).unwrap();
        let bytes = to_binary_vec(&f).unwrap();
        let g = parse_binary(&bytes).unwrap();
        assert_eq!(f.ands, g.ands);
    }
}
