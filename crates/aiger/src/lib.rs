//! AIGER reading, writing and model conversion for the *"Space-
//! Efficient Bounded Model Checking"* (DATE 2005) reproduction.
//!
//! AIGER is the interchange format of the hardware model checking
//! community. This crate implements, from scratch:
//!
//! * the ASCII format `aag` ([`read::parse_ascii`],
//!   [`write::write_ascii`]);
//! * the binary format `aig` with its delta-encoded AND section
//!   ([`read::parse_binary`], [`write::write_binary`]);
//! * AIGER 1.9 extensions: bad-state properties, invariant
//!   constraints, and latch reset values;
//! * conversion to and from the workspace [`Model`](sebmc_model::Model)
//!   ([`convert::aiger_to_model`], [`convert::model_to_aiger`]), so any
//!   HWMCC-style circuit can be fed to the paper's engines.
//!
//! # Example
//!
//! ```
//! use sebmc_aiger::{convert, read, write};
//! use sebmc_model::builders::johnson_counter;
//!
//! let model = johnson_counter(4);
//! let file = convert::model_to_aiger(&model)?;
//! let text = write::to_ascii_string(&file);
//! let parsed = read::parse_ascii(&text).expect("round-trip");
//! assert_eq!(parsed, file);
//! # Ok::<(), sebmc_aiger::ConvertError>(())
//! ```

#![forbid(unsafe_code)]

pub mod convert;
pub mod format;
pub mod read;
pub mod write;

pub use convert::{aiger_to_model, model_to_aiger, model_to_aiger_with_resets, ConvertError};
pub use format::{AigerAnd, AigerFile, AigerLatch, AigerReset, SymbolKind};
pub use read::{parse_ascii, parse_auto, parse_binary, ParseAigerError};
pub use write::{reencode_binary_order, to_ascii_string, to_binary_vec, write_ascii, write_binary};
