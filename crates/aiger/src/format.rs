//! The AIGER in-memory representation.
//!
//! AIGER is the standard exchange format for and-inverter graphs used
//! by hardware model checkers (HWMCC). Literals are unsigned integers:
//! `0`/`1` are the constants, variable `v`'s positive literal is `2v`
//! and its negation `2v + 1`.

use std::fmt;

/// Reset behaviour of a latch (AIGER 1.9).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AigerReset {
    /// Latch starts at 0 (the AIGER 1.0 default).
    Zero,
    /// Latch starts at 1.
    One,
    /// Latch starts nondeterministically.
    Uninitialized,
}

/// One latch: current-state literal, next-state literal, reset value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AigerLatch {
    /// Even literal naming the latch output.
    pub lit: u32,
    /// Literal of the next-state function.
    pub next: u32,
    /// Reset value.
    pub reset: AigerReset,
}

/// One AND gate: `lhs = rhs0 & rhs1` with `lhs` even.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AigerAnd {
    /// Even literal defined by this gate.
    pub lhs: u32,
    /// First operand literal.
    pub rhs0: u32,
    /// Second operand literal.
    pub rhs1: u32,
}

/// Which section a symbol-table entry names.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SymbolKind {
    /// An input (`i<pos>`).
    Input,
    /// A latch (`l<pos>`).
    Latch,
    /// An output (`o<pos>`).
    Output,
    /// A bad-state property (`b<pos>`).
    Bad,
    /// An invariant constraint (`c<pos>`).
    Constraint,
}

impl fmt::Display for SymbolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            SymbolKind::Input => 'i',
            SymbolKind::Latch => 'l',
            SymbolKind::Output => 'o',
            SymbolKind::Bad => 'b',
            SymbolKind::Constraint => 'c',
        };
        write!(f, "{c}")
    }
}

/// A parsed AIGER circuit (ASCII or binary source).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AigerFile {
    /// Maximum variable index (the header's `M`).
    pub max_var: u32,
    /// Input literals (even).
    pub inputs: Vec<u32>,
    /// Latches.
    pub latches: Vec<AigerLatch>,
    /// Output literals.
    pub outputs: Vec<u32>,
    /// Bad-state property literals (AIGER 1.9).
    pub bad: Vec<u32>,
    /// Invariant constraint literals (AIGER 1.9).
    pub constraints: Vec<u32>,
    /// AND gates.
    pub ands: Vec<AigerAnd>,
    /// Symbol table entries `(kind, position, name)`.
    pub symbols: Vec<(SymbolKind, usize, String)>,
    /// Trailing comment lines.
    pub comments: Vec<String>,
}

impl AigerFile {
    /// `true` when the file uses any AIGER 1.9 feature (bad states,
    /// constraints, or non-zero resets).
    pub fn is_aiger19(&self) -> bool {
        !self.bad.is_empty()
            || !self.constraints.is_empty()
            || self.latches.iter().any(|l| l.reset != AigerReset::Zero)
    }

    /// Checks structural well-formedness: literal ranges, even
    /// definitions, unique definitions, acyclic ANDs (each gate must be
    /// defined after its operands when sorted by lhs).
    pub fn validate(&self) -> Result<(), String> {
        let max_lit = 2 * self.max_var + 1;
        let mut defined = vec![false; self.max_var as usize + 1];
        defined[0] = true; // constant
        let mut check_def = |lit: u32, what: &str| -> Result<(), String> {
            if lit > max_lit {
                return Err(format!("{what} literal {lit} exceeds max {max_lit}"));
            }
            if lit & 1 == 1 {
                return Err(format!("{what} literal {lit} must be even"));
            }
            if lit == 0 {
                return Err(format!("{what} literal must not be constant"));
            }
            let var = (lit >> 1) as usize;
            if defined[var] {
                return Err(format!("variable of {what} literal {lit} defined twice"));
            }
            defined[var] = true;
            Ok(())
        };
        for &i in &self.inputs {
            check_def(i, "input")?;
        }
        for l in &self.latches {
            check_def(l.lit, "latch")?;
        }
        for a in &self.ands {
            check_def(a.lhs, "and")?;
        }
        let check_use = |lit: u32, what: &str| -> Result<(), String> {
            if lit > max_lit {
                return Err(format!("{what} literal {lit} exceeds max {max_lit}"));
            }
            let var = (lit >> 1) as usize;
            if !defined[var] {
                return Err(format!("{what} literal {lit} uses undefined variable"));
            }
            Ok(())
        };
        for l in &self.latches {
            check_use(l.next, "latch next")?;
        }
        for &o in &self.outputs {
            check_use(o, "output")?;
        }
        for &b in &self.bad {
            check_use(b, "bad")?;
        }
        for &c in &self.constraints {
            check_use(c, "constraint")?;
        }
        for a in &self.ands {
            check_use(a.rhs0, "and rhs0")?;
            check_use(a.rhs1, "and rhs1")?;
        }
        // Acyclicity: operands must be inputs, latches, constants, or
        // earlier-defined ANDs.
        let mut and_rank = std::collections::HashMap::new();
        for (i, a) in self.ands.iter().enumerate() {
            and_rank.insert(a.lhs >> 1, i);
        }
        let input_or_latch: std::collections::HashSet<u32> = self
            .inputs
            .iter()
            .copied()
            .chain(self.latches.iter().map(|l| l.lit))
            .map(|l| l >> 1)
            .collect();
        for (i, a) in self.ands.iter().enumerate() {
            for rhs in [a.rhs0, a.rhs1] {
                let var = rhs >> 1;
                if var == 0 || input_or_latch.contains(&var) {
                    continue;
                }
                match and_rank.get(&var) {
                    Some(&j) if j < i => {}
                    _ => {
                        return Err(format!(
                            "and gate {} uses operand {rhs} not defined before it",
                            a.lhs
                        ))
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> AigerFile {
        AigerFile {
            max_var: 3,
            inputs: vec![2],
            latches: vec![AigerLatch {
                lit: 4,
                next: 6,
                reset: AigerReset::Zero,
            }],
            outputs: vec![6],
            ands: vec![AigerAnd {
                lhs: 6,
                rhs0: 2,
                rhs1: 4,
            }],
            ..AigerFile::default()
        }
    }

    #[test]
    fn valid_file_passes() {
        assert_eq!(simple().validate(), Ok(()));
        assert!(!simple().is_aiger19());
    }

    #[test]
    fn aiger19_detection() {
        let mut f = simple();
        f.bad.push(6);
        assert!(f.is_aiger19());
        let mut g = simple();
        g.latches[0].reset = AigerReset::Uninitialized;
        assert!(g.is_aiger19());
    }

    #[test]
    fn odd_definition_rejected() {
        let mut f = simple();
        f.inputs[0] = 3;
        assert!(f.validate().unwrap_err().contains("even"));
    }

    #[test]
    fn double_definition_rejected() {
        let mut f = simple();
        f.inputs.push(4);
        assert!(f.validate().unwrap_err().contains("twice"));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut f = simple();
        f.outputs.push(99);
        assert!(f.validate().unwrap_err().contains("exceeds"));
    }

    #[test]
    fn forward_reference_rejected() {
        let mut f = simple();
        f.ands = vec![
            AigerAnd {
                lhs: 6,
                rhs0: 2,
                rhs1: 8, // defined later
            },
            AigerAnd {
                lhs: 8,
                rhs0: 2,
                rhs1: 4,
            },
        ];
        f.max_var = 4;
        let err = f.validate().unwrap_err();
        assert!(err.contains("not defined before"), "{err}");
    }
}
