//! Conversion between [`AigerFile`] and the workspace [`Model`].
//!
//! AIGER's latch view matches the functional transition systems used
//! throughout this reproduction: latches are state variables, the
//! first bad-state property (or, for AIGER 1.0 files, the first
//! output) is the target predicate `F`, and invariant constraints map
//! directly.

use std::error::Error;
use std::fmt;

use sebmc_logic::AigRef;
use sebmc_model::{Model, ModelBuilder};

use crate::format::{AigerAnd, AigerFile, AigerLatch, AigerReset, SymbolKind};

/// Error produced by the AIGER ↔ model conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The AIGER file has neither bad-state properties nor outputs.
    NoProperty,
    /// The target (bad/output) cone depends on a primary input, which
    /// the paper's state-predicate `F` cannot express.
    InputDependentProperty(String),
    /// The model's initial predicate is not a cube of per-latch
    /// constants, or could not be verified to be one.
    UnsupportedInit(String),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::NoProperty => {
                write!(f, "aiger file has no bad-state property and no output")
            }
            ConvertError::InputDependentProperty(m) => {
                write!(f, "property depends on a primary input: {m}")
            }
            ConvertError::UnsupportedInit(m) => {
                write!(
                    f,
                    "initial predicate is not expressible as latch resets: {m}"
                )
            }
        }
    }
}

impl Error for ConvertError {}

/// Builds a [`Model`] from an AIGER file.
///
/// The target is the disjunction of the bad-state literals, falling
/// back to the disjunction of outputs for AIGER 1.0 files.
///
/// # Errors
///
/// * [`ConvertError::NoProperty`] when there is nothing to check;
/// * [`ConvertError::InputDependentProperty`] when the property cone
///   reads a primary input (inexpressible as a state predicate `F`).
pub fn aiger_to_model(file: &AigerFile, name: &str) -> Result<Model, ConvertError> {
    let mut b = ModelBuilder::new(name);
    let mut names: Vec<Option<&str>> = vec![None; file.max_var as usize + 1];
    for (kind, pos, sym) in &file.symbols {
        let lit = match kind {
            SymbolKind::Input => file.inputs.get(*pos).copied(),
            SymbolKind::Latch => file.latches.get(*pos).map(|l| l.lit),
            _ => None,
        };
        if let Some(lit) = lit {
            names[(lit >> 1) as usize] = Some(sym);
        }
    }

    // var index -> AigRef (positive form).
    let mut map: Vec<Option<AigRef>> = vec![None; file.max_var as usize + 1];
    map[0] = Some(AigRef::FALSE);
    for (i, &lit) in file.inputs.iter().enumerate() {
        let nm = names[(lit >> 1) as usize].map_or_else(|| format!("i{i}"), str::to_string);
        map[(lit >> 1) as usize] = Some(b.input(nm));
    }
    for (i, l) in file.latches.iter().enumerate() {
        let nm = names[(l.lit >> 1) as usize].map_or_else(|| format!("l{i}"), str::to_string);
        map[(l.lit >> 1) as usize] = Some(b.state_var(nm));
    }
    let tr = |map: &[Option<AigRef>], lit: u32| -> AigRef {
        let r = map[(lit >> 1) as usize].expect("aiger literal defined (validated)");
        if lit & 1 == 1 {
            !r
        } else {
            r
        }
    };
    for a in &file.ands {
        let r0 = tr(&map, a.rhs0);
        let r1 = tr(&map, a.rhs1);
        map[(a.lhs >> 1) as usize] = Some(b.aig_mut().and(r0, r1));
    }

    for (i, l) in file.latches.iter().enumerate() {
        let next = tr(&map, l.next);
        b.set_next(i, next);
    }

    // Init: conjunction of per-latch reset constants.
    let mut init = AigRef::TRUE;
    for l in &file.latches {
        let r = tr(&map, l.lit);
        init = match l.reset {
            AigerReset::Zero => b.aig_mut().and(init, !r),
            AigerReset::One => b.aig_mut().and(init, r),
            AigerReset::Uninitialized => init,
        };
    }
    b.set_init(init);

    // Target: OR of bad literals, else OR of outputs.
    let props: &[u32] = if file.bad.is_empty() {
        &file.outputs
    } else {
        &file.bad
    };
    if props.is_empty() {
        return Err(ConvertError::NoProperty);
    }
    let mut target = AigRef::FALSE;
    for &p in props {
        let r = tr(&map, p);
        target = b.aig_mut().or(target, r);
    }
    b.set_target(target);

    for &c in &file.constraints {
        let r = tr(&map, c);
        b.add_constraint(r);
    }

    b.build()
        .map_err(|e| ConvertError::InputDependentProperty(e.message))
}

/// Exports a [`Model`] to an AIGER 1.9 file in canonical binary order.
///
/// The initial predicate must be a cube of per-latch constants; this is
/// verified exhaustively, which restricts the export to models with at
/// most 22 state bits. Use [`model_to_aiger_with_resets`] to supply
/// the resets yourself for larger models.
///
/// # Errors
///
/// [`ConvertError::UnsupportedInit`] when the initial predicate is not
/// a constant cube or the model is too large to verify.
pub fn model_to_aiger(model: &Model) -> Result<AigerFile, ConvertError> {
    let n = model.num_state_vars();
    if n > 22 {
        return Err(ConvertError::UnsupportedInit(format!(
            "cannot exhaustively verify the init cube of {n} state bits; \
             use model_to_aiger_with_resets"
        )));
    }
    let inits = model.enumerate_initial_states();
    if inits.is_empty() {
        return Err(ConvertError::UnsupportedInit(
            "model has no initial state".into(),
        ));
    }
    // Determine per-bit behaviour across all initial states.
    let mut resets = Vec::with_capacity(n);
    for i in 0..n {
        let first = inits[0][i];
        if inits.iter().all(|s| s[i] == first) {
            resets.push(if first {
                AigerReset::One
            } else {
                AigerReset::Zero
            });
        } else {
            resets.push(AigerReset::Uninitialized);
        }
    }
    // The init set must be exactly the cube implied by `resets`.
    let free_bits = resets
        .iter()
        .filter(|r| **r == AigerReset::Uninitialized)
        .count();
    if inits.len() != 1usize << free_bits {
        return Err(ConvertError::UnsupportedInit(format!(
            "{} initial states do not form a cube",
            inits.len()
        )));
    }
    model_to_aiger_with_resets(model, &resets)
}

/// Exports a [`Model`] with caller-supplied latch resets (the caller
/// asserts that the model's init predicate equals this cube).
///
/// # Errors
///
/// Currently infallible for well-formed models; returns `Result` for
/// forward compatibility.
///
/// # Panics
///
/// Panics if `resets` has the wrong length.
pub fn model_to_aiger_with_resets(
    model: &Model,
    resets: &[AigerReset],
) -> Result<AigerFile, ConvertError> {
    let n = model.num_state_vars();
    let m = model.num_inputs();
    assert_eq!(resets.len(), n, "one reset per state variable");
    let aig = model.aig();

    // Canonical variable numbering: inputs 1..=m, latches m+1..=m+n,
    // then AND gates in topological order.
    let mut var_of_node: Vec<Option<u32>> = vec![None; aig.num_nodes()];
    for (j, &idx) in model.free_input_indices().iter().enumerate() {
        let node = aig.input_ref(idx).node();
        var_of_node[node] = Some(j as u32 + 1);
    }
    for (i, &idx) in model.state_input_indices().iter().enumerate() {
        let node = aig.input_ref(idx).node();
        var_of_node[node] = Some(m as u32 + i as u32 + 1);
    }

    let mut roots: Vec<AigRef> = model.next_refs().to_vec();
    roots.push(model.target_ref());
    roots.extend_from_slice(model.constraint_refs());
    let mut ands: Vec<AigerAnd> = Vec::new();
    let mut next_var = (m + n) as u32 + 1;
    // cone_topo returns fan-ins before fan-outs.
    let lit_of = |var_of_node: &[Option<u32>], r: AigRef| -> u32 {
        let v = var_of_node[r.node()].expect("node numbered in topo order");
        v << 1 | u32::from(r.is_complement())
    };
    for node in aig.cone_topo(&roots) {
        if var_of_node[node].is_some() || aig.is_const_node(node) {
            continue;
        }
        if let Some((a, b)) = aig.and_fanins(node) {
            let r0 = lit_of(&var_of_node, a);
            let r1 = lit_of(&var_of_node, b);
            var_of_node[node] = Some(next_var);
            ands.push(AigerAnd {
                lhs: next_var << 1,
                rhs0: r0.max(r1),
                rhs1: r0.min(r1),
            });
            next_var += 1;
        }
    }
    let lit = |r: AigRef| -> u32 {
        if r == AigRef::FALSE {
            0
        } else if r == AigRef::TRUE {
            1
        } else {
            lit_of(&var_of_node, r)
        }
    };

    let latches: Vec<AigerLatch> = (0..n)
        .map(|i| AigerLatch {
            lit: (m as u32 + i as u32 + 1) << 1,
            next: lit(model.next_refs()[i]),
            reset: resets[i],
        })
        .collect();
    let target = lit(model.target_ref());
    let mut symbols: Vec<(SymbolKind, usize, String)> = Vec::new();
    for j in 0..m {
        symbols.push((SymbolKind::Input, j, model.input_name(j).to_string()));
    }
    for i in 0..n {
        symbols.push((SymbolKind::Latch, i, model.state_name(i).to_string()));
    }
    let file = AigerFile {
        max_var: next_var - 1,
        inputs: (1..=m as u32).map(|v| v << 1).collect(),
        latches,
        outputs: vec![target],
        bad: vec![target],
        constraints: model.constraint_refs().iter().map(|&c| lit(c)).collect(),
        ands,
        symbols,
        comments: vec![format!("exported from sebmc model '{}'", model.name())],
    };
    debug_assert_eq!(file.validate(), Ok(()));
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::parse_ascii;
    use crate::write::{to_ascii_string, to_binary_vec};
    use sebmc_model::builders;

    /// Behavioural equivalence on random stimuli.
    fn assert_same_behaviour(a: &Model, b: &Model, steps: usize) {
        assert_eq!(a.num_state_vars(), b.num_state_vars());
        assert_eq!(a.num_inputs(), b.num_inputs());
        let mut state_a = a.enumerate_initial_states()[0].clone();
        let mut state_b = state_a.clone();
        let mut seed = 0x5eedu64;
        for step in 0..steps {
            assert_eq!(
                a.eval_target(&state_a),
                b.eval_target(&state_b),
                "step {step}"
            );
            let inputs: Vec<bool> = (0..a.num_inputs())
                .map(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    seed >> 33 & 1 == 1
                })
                .collect();
            assert_eq!(
                a.eval_constraints(&state_a, &inputs),
                b.eval_constraints(&state_b, &inputs)
            );
            state_a = a.step(&state_a, &inputs);
            state_b = b.step(&state_b, &inputs);
            assert_eq!(state_a, state_b, "step {step}");
        }
    }

    #[test]
    fn aiger_to_model_toggle() {
        // Toggler with bad state when the latch is 1.
        let f = parse_ascii("aag 1 0 1 0 0 1\n2 3\n2\n").unwrap();
        let m = aiger_to_model(&f, "toggle").unwrap();
        assert_eq!(m.num_state_vars(), 1);
        assert!(!m.eval_target(&[false]));
        assert!(m.eval_target(&[true]));
        assert_eq!(m.step(&[false], &[]), vec![true]);
    }

    #[test]
    fn falls_back_to_outputs_for_aiger10() {
        let f = parse_ascii("aag 1 0 1 1 0\n2 3\n2\n").unwrap();
        let m = aiger_to_model(&f, "t").unwrap();
        assert!(m.eval_target(&[true]));
    }

    #[test]
    fn rejects_no_property() {
        let f = parse_ascii("aag 1 0 1 0 0\n2 3\n").unwrap();
        let e = aiger_to_model(&f, "x").unwrap_err();
        assert_eq!(e, ConvertError::NoProperty);
    }

    #[test]
    fn rejects_input_dependent_property() {
        let f = parse_ascii("aag 1 1 0 1 0\n2\n2\n").unwrap();
        let e = aiger_to_model(&f, "x").unwrap_err();
        assert!(matches!(e, ConvertError::InputDependentProperty(_)));
        assert!(e.to_string().contains("input"));
    }

    #[test]
    fn model_round_trips_through_aiger() {
        for model in [
            builders::counter_with_enable(3),
            builders::shift_register(4),
            builders::johnson_counter(4),
            builders::traffic_light(),
            builders::fifo(1),
            builders::peterson(),
        ] {
            let f = model_to_aiger(&model).expect("export");
            assert_eq!(f.validate(), Ok(()));
            let back = aiger_to_model(&f, model.name()).expect("import");
            assert_same_behaviour(&model, &back, 24);
        }
    }

    #[test]
    fn nonzero_init_round_trips() {
        let model = builders::lfsr(4, 6); // init = 0b0001
        let f = model_to_aiger(&model).expect("export");
        assert!(f.latches.iter().any(|l| l.reset == AigerReset::One));
        let back = aiger_to_model(&f, model.name()).expect("import");
        assert_same_behaviour(&model, &back, 20);
    }

    #[test]
    fn ascii_and_binary_exports_parse_back_equal() {
        let model = builders::gray_counter(3);
        let f = model_to_aiger(&model).unwrap();
        let ascii = to_ascii_string(&f);
        let binary = to_binary_vec(&f).unwrap();
        let fa = crate::read::parse_ascii(&ascii).unwrap();
        let fb = crate::read::parse_binary(&binary).unwrap();
        assert_eq!(fa, fb);
        assert_eq!(fa, f);
    }

    #[test]
    fn export_rejects_oversized_models() {
        let model = builders::random_fsm(28, 3, 2005);
        let e = model_to_aiger(&model).unwrap_err();
        assert!(matches!(e, ConvertError::UnsupportedInit(_)));
        // Explicit resets work for any size.
        let resets = vec![AigerReset::Zero; 28];
        let f = model_to_aiger_with_resets(&model, &resets).unwrap();
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn one_hot_init_is_a_cube_of_constants() {
        let model = builders::token_ring(4);
        let f = model_to_aiger(&model).unwrap();
        let ones = f
            .latches
            .iter()
            .filter(|l| l.reset == AigerReset::One)
            .count();
        assert_eq!(ones, 1, "token starts at exactly one station");
    }
}
