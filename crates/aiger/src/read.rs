//! AIGER parsing: ASCII (`aag`) and binary (`aig`).

use std::error::Error;
use std::fmt;

use crate::format::{AigerAnd, AigerFile, AigerLatch, AigerReset, SymbolKind};

/// Error produced when parsing an AIGER document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAigerError {
    /// 1-based line number for ASCII input, byte offset for binary.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aiger parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl Error for ParseAigerError {}

fn err(position: usize, message: impl Into<String>) -> ParseAigerError {
    ParseAigerError {
        position,
        message: message.into(),
    }
}

struct Header {
    max_var: u32,
    i: usize,
    l: usize,
    o: usize,
    a: usize,
    b: usize,
    c: usize,
}

fn parse_header(line: &str, expect_tag: &str) -> Result<Header, ParseAigerError> {
    let mut parts = line.split_whitespace();
    let tag = parts.next().ok_or_else(|| err(1, "empty header"))?;
    if tag != expect_tag {
        return Err(err(
            1,
            format!("expected '{expect_tag}' header, got '{tag}'"),
        ));
    }
    let nums: Vec<usize> = parts
        .map(|t| {
            t.parse()
                .map_err(|_| err(1, format!("bad header field '{t}'")))
        })
        .collect::<Result<_, _>>()?;
    if nums.len() < 5 || nums.len() > 7 {
        return Err(err(
            1,
            format!("header needs 5-7 fields, got {}", nums.len()),
        ));
    }
    Ok(Header {
        max_var: nums[0] as u32,
        i: nums[1],
        l: nums[2],
        o: nums[3],
        a: nums[4],
        b: nums.get(5).copied().unwrap_or(0),
        c: nums.get(6).copied().unwrap_or(0),
    })
}

fn parse_reset(latch_lit: u32, token: &str, lineno: usize) -> Result<AigerReset, ParseAigerError> {
    let v: u32 = token
        .parse()
        .map_err(|_| err(lineno, format!("bad reset token '{token}'")))?;
    match v {
        0 => Ok(AigerReset::Zero),
        1 => Ok(AigerReset::One),
        x if x == latch_lit => Ok(AigerReset::Uninitialized),
        other => Err(err(
            lineno,
            format!("reset must be 0, 1 or the latch literal, got {other}"),
        )),
    }
}

/// Parses symbol-table and comment lines (shared by both formats).
fn parse_trailer(
    lines: &mut std::iter::Enumerate<std::str::Lines<'_>>,
    file: &mut AigerFile,
) -> Result<(), ParseAigerError> {
    let mut in_comments = false;
    for (idx, line) in lines {
        let lineno = idx + 1;
        if in_comments {
            file.comments.push(line.to_string());
            continue;
        }
        if line == "c" {
            in_comments = true;
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let (kind, rest) = match line.chars().next() {
            Some('i') => (SymbolKind::Input, &line[1..]),
            Some('l') => (SymbolKind::Latch, &line[1..]),
            Some('o') => (SymbolKind::Output, &line[1..]),
            Some('b') => (SymbolKind::Bad, &line[1..]),
            Some('c') => (SymbolKind::Constraint, &line[1..]),
            _ => return Err(err(lineno, format!("unexpected trailer line '{line}'"))),
        };
        let mut parts = rest.splitn(2, ' ');
        let pos: usize = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err(lineno, format!("bad symbol position in '{line}'")))?;
        let name = parts
            .next()
            .ok_or_else(|| err(lineno, format!("missing symbol name in '{line}'")))?;
        file.symbols.push((kind, pos, name.to_string()));
    }
    Ok(())
}

/// Parses the ASCII (`aag`) format.
///
/// # Errors
///
/// Returns [`ParseAigerError`] for malformed headers, bad literals,
/// count mismatches, or structural violations (checked with
/// [`AigerFile::validate`]).
///
/// # Example
///
/// ```
/// # use sebmc_aiger::read::parse_ascii;
/// // A single AND gate: o0 = i0 & i1.
/// let f = parse_ascii("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n")?;
/// assert_eq!(f.inputs, vec![2, 4]);
/// assert_eq!(f.ands.len(), 1);
/// # Ok::<(), sebmc_aiger::ParseAigerError>(())
/// ```
pub fn parse_ascii(input: &str) -> Result<AigerFile, ParseAigerError> {
    let mut lines = input.lines().enumerate();
    let (_, header_line) = lines.next().ok_or_else(|| err(1, "missing header"))?;
    let h = parse_header(header_line, "aag")?;
    let mut file = AigerFile {
        max_var: h.max_var,
        ..AigerFile::default()
    };

    let mut next_line = |what: &str| -> Result<(usize, &str), ParseAigerError> {
        lines
            .next()
            .map(|(i, l)| (i + 1, l))
            .ok_or_else(|| err(0, format!("unexpected end of file in {what} section")))
    };

    let parse_lit = |tok: &str, lineno: usize| -> Result<u32, ParseAigerError> {
        tok.parse()
            .map_err(|_| err(lineno, format!("bad literal '{tok}'")))
    };

    for _ in 0..h.i {
        let (lineno, line) = next_line("input")?;
        file.inputs.push(parse_lit(line.trim(), lineno)?);
    }
    for _ in 0..h.l {
        let (lineno, line) = next_line("latch")?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 2 || toks.len() > 3 {
            return Err(err(lineno, "latch line needs 2-3 fields"));
        }
        let lit = parse_lit(toks[0], lineno)?;
        let next = parse_lit(toks[1], lineno)?;
        let reset = if toks.len() == 3 {
            parse_reset(lit, toks[2], lineno)?
        } else {
            AigerReset::Zero
        };
        file.latches.push(AigerLatch { lit, next, reset });
    }
    for _ in 0..h.o {
        let (lineno, line) = next_line("output")?;
        file.outputs.push(parse_lit(line.trim(), lineno)?);
    }
    for _ in 0..h.b {
        let (lineno, line) = next_line("bad")?;
        file.bad.push(parse_lit(line.trim(), lineno)?);
    }
    for _ in 0..h.c {
        let (lineno, line) = next_line("constraint")?;
        file.constraints.push(parse_lit(line.trim(), lineno)?);
    }
    for _ in 0..h.a {
        let (lineno, line) = next_line("and")?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 3 {
            return Err(err(lineno, "and line needs 3 fields"));
        }
        file.ands.push(AigerAnd {
            lhs: parse_lit(toks[0], lineno)?,
            rhs0: parse_lit(toks[1], lineno)?,
            rhs1: parse_lit(toks[2], lineno)?,
        });
    }
    parse_trailer(&mut lines, &mut file)?;
    file.validate().map_err(|m| err(0, m))?;
    Ok(file)
}

/// Parses the binary (`aig`) format.
///
/// # Errors
///
/// Returns [`ParseAigerError`] for malformed content; positions are
/// byte offsets.
pub fn parse_binary(input: &[u8]) -> Result<AigerFile, ParseAigerError> {
    // The header and the latch/output/bad/constraint sections are
    // ASCII lines; the AND section is binary; the trailer is ASCII.
    let mut pos = 0usize;
    let read_line = |pos: &mut usize| -> Result<String, ParseAigerError> {
        let start = *pos;
        while *pos < input.len() && input[*pos] != b'\n' {
            *pos += 1;
        }
        if *pos >= input.len() {
            return Err(err(start, "unexpected end of binary aiger"));
        }
        let line = std::str::from_utf8(&input[start..*pos])
            .map_err(|_| err(start, "non-UTF8 header line"))?
            .to_string();
        *pos += 1; // consume newline
        Ok(line)
    };

    let header_line = read_line(&mut pos)?;
    let h = parse_header(&header_line, "aig")?;
    if h.max_var as usize != h.i + h.l + h.a {
        return Err(err(
            0,
            format!(
                "binary aiger requires M = I+L+A, got M={} I={} L={} A={}",
                h.max_var, h.i, h.l, h.a
            ),
        ));
    }
    let mut file = AigerFile {
        max_var: h.max_var,
        ..AigerFile::default()
    };
    // Implicit inputs: literals 2, 4, …, 2I.
    for i in 0..h.i {
        file.inputs.push(2 * (i as u32 + 1));
    }
    // Latches: implicit current literals, explicit next (and reset).
    for l in 0..h.l {
        let lit = 2 * (h.i as u32 + l as u32 + 1);
        let line = read_line(&mut pos)?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.is_empty() || toks.len() > 2 {
            return Err(err(pos, "binary latch line needs 1-2 fields"));
        }
        let next: u32 = toks[0]
            .parse()
            .map_err(|_| err(pos, format!("bad next literal '{}'", toks[0])))?;
        let reset = if toks.len() == 2 {
            parse_reset(lit, toks[1], pos)?
        } else {
            AigerReset::Zero
        };
        file.latches.push(AigerLatch { lit, next, reset });
    }
    let read_lit_line = |pos: &mut usize| -> Result<u32, ParseAigerError> {
        let line = read_line(pos)?;
        line.trim()
            .parse()
            .map_err(|_| err(*pos, format!("bad literal line '{line}'")))
    };
    for _ in 0..h.o {
        let lit = read_lit_line(&mut pos)?;
        file.outputs.push(lit);
    }
    for _ in 0..h.b {
        let lit = read_lit_line(&mut pos)?;
        file.bad.push(lit);
    }
    for _ in 0..h.c {
        let lit = read_lit_line(&mut pos)?;
        file.constraints.push(lit);
    }
    // Binary AND section: two LEB128-style deltas per gate.
    let read_delta = |pos: &mut usize| -> Result<u32, ParseAigerError> {
        let mut x: u32 = 0;
        let mut shift = 0;
        loop {
            if *pos >= input.len() {
                return Err(err(*pos, "unexpected end of delta encoding"));
            }
            let byte = input[*pos];
            *pos += 1;
            x |= u32::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
            if shift > 28 {
                return Err(err(*pos, "delta encoding too long"));
            }
        }
    };
    for a in 0..h.a {
        let lhs = 2 * (h.i as u32 + h.l as u32 + a as u32 + 1);
        let delta0 = read_delta(&mut pos)?;
        let delta1 = read_delta(&mut pos)?;
        let rhs0 = lhs
            .checked_sub(delta0)
            .ok_or_else(|| err(pos, "delta0 underflows"))?;
        let rhs1 = rhs0
            .checked_sub(delta1)
            .ok_or_else(|| err(pos, "delta1 underflows"))?;
        file.ands.push(AigerAnd { lhs, rhs0, rhs1 });
    }
    // Trailer (symbols/comments) is ASCII.
    if pos < input.len() {
        let rest = std::str::from_utf8(&input[pos..]).map_err(|_| err(pos, "non-UTF8 trailer"))?;
        let mut lines = rest.lines().enumerate();
        parse_trailer(&mut lines, &mut file)?;
    }
    file.validate().map_err(|m| err(0, m))?;
    Ok(file)
}

/// Parses either format by sniffing the header tag.
///
/// # Errors
///
/// Returns [`ParseAigerError`] if the content is neither valid `aag`
/// nor valid `aig`.
pub fn parse_auto(input: &[u8]) -> Result<AigerFile, ParseAigerError> {
    if input.starts_with(b"aag ") {
        let text = std::str::from_utf8(input).map_err(|_| err(0, "non-UTF8 ascii aiger"))?;
        parse_ascii(text)
    } else if input.starts_with(b"aig ") {
        parse_binary(input)
    } else {
        Err(err(
            0,
            "unrecognized AIGER header (expected 'aag' or 'aig')",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = "aag 1 0 1 2 0\n2 3\n2\n3\nl0 toggle\nc\nhello\n";

    #[test]
    fn parses_toggle_example() {
        let f = parse_ascii(TOGGLE).unwrap();
        assert_eq!(f.max_var, 1);
        assert_eq!(f.latches.len(), 1);
        assert_eq!(f.latches[0].next, 3);
        assert_eq!(f.outputs, vec![2, 3]);
        assert_eq!(f.symbols.len(), 1);
        assert_eq!(f.comments, vec!["hello"]);
    }

    #[test]
    fn parses_and_gate() {
        let f = parse_ascii("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n").unwrap();
        assert_eq!(
            f.ands[0],
            AigerAnd {
                lhs: 6,
                rhs0: 2,
                rhs1: 4
            }
        );
    }

    #[test]
    fn parses_aiger19_sections() {
        let f = parse_ascii("aag 2 1 1 0 0 1 1\n2\n4 2 4\n4\n2\n").unwrap();
        assert_eq!(f.bad, vec![4]);
        assert_eq!(f.constraints, vec![2]);
        assert_eq!(f.latches[0].reset, AigerReset::Uninitialized);
        assert!(f.is_aiger19());
    }

    #[test]
    fn rejects_truncated_file() {
        let e = parse_ascii("aag 3 2 0 1 1\n2\n4\n").unwrap_err();
        assert!(e.message.contains("end of file"), "{e}");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_ascii("aat 1 0 0 0 0\n").is_err());
        assert!(parse_ascii("aag 1 0\n").is_err());
        assert!(parse_ascii("aag x 0 0 0 0\n").is_err());
    }

    #[test]
    fn rejects_bad_reset() {
        let e = parse_ascii("aag 2 1 1 0 0\n2\n4 2 7\n").unwrap_err();
        assert!(e.message.contains("reset"), "{e}");
    }

    #[test]
    fn rejects_invalid_structure() {
        // Output uses undefined variable 5.
        let e = parse_ascii("aag 5 1 0 1 0\n2\n10\n").unwrap_err();
        assert!(e.message.contains("undefined"), "{e}");
    }

    #[test]
    fn binary_round_trip_of_known_bytes() {
        // Binary encoding of: aig 3 1 1 0 1 with latch next=6,
        // and gate 6 = 2 & 4. Deltas: 6-4=2, 4-2=2.
        let mut bytes = b"aig 3 1 1 0 1\n6\n".to_vec();
        bytes.push(2);
        bytes.push(2);
        let f = parse_binary(&bytes).unwrap();
        assert_eq!(f.inputs, vec![2]);
        assert_eq!(f.latches[0].lit, 4);
        assert_eq!(f.latches[0].next, 6);
        assert_eq!(
            f.ands[0],
            AigerAnd {
                lhs: 6,
                rhs0: 4,
                rhs1: 2
            }
        );
    }

    #[test]
    fn binary_rejects_m_mismatch() {
        let e = parse_binary(b"aig 9 1 1 0 1\n6\n\x02\x02").unwrap_err();
        assert!(e.message.contains("M = I+L+A"), "{e}");
    }

    #[test]
    fn binary_multibyte_delta() {
        // One gate whose delta0 needs two bytes: lhs = 2*(200+1) -
        // build 200 inputs, 0 latches, 1 and.
        let mut text = String::from("aig 201 200 0 0 1\n");
        let mut bytes = text.clone().into_bytes();
        let lhs = 2 * 201u32;
        let rhs0 = 2; // delta0 = 402 - 2 = 400 (two bytes)
        let rhs1 = 2;
        let d0 = lhs - rhs0;
        let d1 = rhs0 - rhs1;
        bytes.push((d0 & 0x7f) as u8 | 0x80);
        bytes.push((d0 >> 7) as u8);
        bytes.push(d1 as u8);
        let f = parse_binary(&bytes).unwrap();
        assert_eq!(f.ands[0], AigerAnd { lhs, rhs0, rhs1 });
        text.clear();
    }

    #[test]
    fn auto_detects_format() {
        assert!(parse_auto(TOGGLE.as_bytes()).is_ok());
        assert!(parse_auto(b"aig 0 0 0 0 0\n").is_ok());
        assert!(parse_auto(b"garbage").is_err());
    }
}
