//! Explicit-state reachability — the ground-truth oracle.
//!
//! For models small enough to enumerate (≲ 22 state+input bits), these
//! functions compute *exact* bounded reachability by breadth-first
//! exploration of the concrete state graph. Every symbolic engine in
//! the reproduction is validated against this oracle in the test
//! suites.

use std::collections::HashSet;

use crate::model::{pack_state, unpack_state, Model};
use crate::trace::Trace;

/// Maximum state+input bits for explicit exploration.
const MAX_EXPLICIT_BITS: usize = 22;

fn assert_small(model: &Model) {
    let bits = model.num_state_vars() + model.num_inputs();
    assert!(
        bits <= MAX_EXPLICIT_BITS,
        "explicit-state engine limited to {MAX_EXPLICIT_BITS} state+input bits, model '{}' has {bits}",
        model.name()
    );
}

/// The set of states reachable in *exactly* `i` steps from the initial
/// states, for every `i ≤ bound`, honouring invariant constraints.
pub fn reachable_sets(model: &Model, bound: usize) -> Vec<HashSet<u64>> {
    assert_small(model);
    let n = model.num_state_vars();
    let m = model.num_inputs();
    let mut layers: Vec<HashSet<u64>> = Vec::with_capacity(bound + 1);
    let mut frontier: HashSet<u64> = model
        .enumerate_initial_states()
        .iter()
        .map(|s| pack_state(s))
        .collect();
    layers.push(frontier.clone());
    for _ in 0..bound {
        let mut next: HashSet<u64> = HashSet::new();
        for &packed in &frontier {
            let state = unpack_state(packed, n);
            for input_bits in 0u64..(1u64 << m) {
                let inputs = unpack_state(input_bits, m);
                if !model.eval_constraints(&state, &inputs) {
                    continue;
                }
                next.insert(pack_state(&model.step(&state, &inputs)));
            }
        }
        layers.push(next.clone());
        frontier = next;
    }
    layers
}

/// Whether some target state is reachable in *exactly* `k` steps.
pub fn reachable_in_exactly(model: &Model, k: usize) -> bool {
    let layers = reachable_sets(model, k);
    layers[k]
        .iter()
        .any(|&packed| model.eval_target(&unpack_state(packed, model.num_state_vars())))
}

/// Whether some target state is reachable in *at most* `k` steps.
pub fn reachable_within(model: &Model, k: usize) -> bool {
    let layers = reachable_sets(model, k);
    layers.iter().any(|layer| {
        layer
            .iter()
            .any(|&p| model.eval_target(&unpack_state(p, model.num_state_vars())))
    })
}

/// Length of the shortest path from an initial state to a target state,
/// if one exists within `max_bound` steps.
pub fn min_steps_to_target(model: &Model, max_bound: usize) -> Option<usize> {
    let n = model.num_state_vars();
    let layers = reachable_sets(model, max_bound);
    layers.iter().position(|layer| {
        layer
            .iter()
            .any(|&p| model.eval_target(&unpack_state(p, n)))
    })
}

/// Reconstructs a shortest witness trace by explicit search, if the
/// target is reachable within `max_bound` steps. Used to sanity-check
/// the symbolic engines' witnesses against a known-good one.
pub fn find_witness(model: &Model, max_bound: usize) -> Option<Trace> {
    assert_small(model);
    let n = model.num_state_vars();
    let m = model.num_inputs();
    // BFS storing predecessor (state, input) per (depth, state).
    let mut layers: Vec<std::collections::HashMap<u64, Option<(u64, u64)>>> = Vec::new();
    let mut frontier: std::collections::HashMap<u64, Option<(u64, u64)>> = model
        .enumerate_initial_states()
        .iter()
        .map(|s| (pack_state(s), None))
        .collect();
    layers.push(frontier.clone());
    for depth in 0..=max_bound {
        // Check the current layer for a target state.
        if let Some((&hit, _)) = layers[depth]
            .iter()
            .find(|(&p, _)| model.eval_target(&unpack_state(p, n)))
        {
            // Walk predecessors back to depth 0.
            let mut states = vec![hit];
            let mut inputs_rev: Vec<u64> = Vec::new();
            let mut cur = hit;
            for d in (1..=depth).rev() {
                let (prev, inp) = layers[d][&cur].expect("non-initial layer has predecessors");
                states.push(prev);
                inputs_rev.push(inp);
                cur = prev;
            }
            states.reverse();
            inputs_rev.reverse();
            return Some(Trace {
                states: states.iter().map(|&p| unpack_state(p, n)).collect(),
                inputs: inputs_rev.iter().map(|&i| unpack_state(i, m)).collect(),
            });
        }
        if depth == max_bound {
            break;
        }
        let mut next: std::collections::HashMap<u64, Option<(u64, u64)>> =
            std::collections::HashMap::new();
        for &packed in frontier.keys() {
            let state = unpack_state(packed, n);
            for input_bits in 0u64..(1u64 << m) {
                let inputs = unpack_state(input_bits, m);
                if !model.eval_constraints(&state, &inputs) {
                    continue;
                }
                let succ = pack_state(&model.step(&state, &inputs));
                next.entry(succ).or_insert(Some((packed, input_bits)));
            }
        }
        layers.push(next.clone());
        frontier = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use sebmc_logic::AigRef;

    /// 3-bit counter with reset input; target = 7.
    fn counter3() -> Model {
        let mut b = ModelBuilder::new("c3");
        let bits = b.state_vars(3, "c");
        let reset = b.input("r");
        let inc = b.aig_mut().increment(&bits);
        let nexts: Vec<AigRef> = inc
            .iter()
            .map(|&f| b.aig_mut().ite(reset, AigRef::FALSE, f))
            .collect();
        b.set_next_all(&nexts);
        let t = b.aig_mut().eq_const(&bits, 7);
        b.set_target(t);
        b.build().unwrap()
    }

    #[test]
    fn exact_layers_of_counter() {
        let m = counter3();
        let layers = reachable_sets(&m, 3);
        // From 0: step i reaches {i, and 0 via reset}.
        assert_eq!(layers[0], [0].into_iter().collect());
        assert_eq!(layers[1], [1, 0].into_iter().collect());
        assert_eq!(layers[2], [2, 1, 0].into_iter().collect());
        assert_eq!(layers[3], [3, 2, 1, 0].into_iter().collect());
    }

    #[test]
    fn exactly_vs_within() {
        let m = counter3();
        assert!(!reachable_in_exactly(&m, 6));
        assert!(reachable_in_exactly(&m, 7));
        // With the reset input, longer exact paths exist too.
        assert!(reachable_in_exactly(&m, 8));
        assert!(!reachable_within(&m, 6));
        assert!(reachable_within(&m, 7));
        assert!(reachable_within(&m, 12));
    }

    #[test]
    fn min_steps() {
        let m = counter3();
        assert_eq!(min_steps_to_target(&m, 10), Some(7));
        assert_eq!(min_steps_to_target(&m, 5), None);
    }

    #[test]
    fn witness_is_valid_and_shortest() {
        let m = counter3();
        let t = find_witness(&m, 10).expect("reachable");
        assert_eq!(t.len(), 7);
        assert_eq!(m.check_trace(&t), Ok(()));
        assert!(find_witness(&m, 6).is_none());
    }

    #[test]
    fn unreachable_target_has_no_witness() {
        // Toggler with target never reachable: target = x ∧ ¬x.
        let mut b = ModelBuilder::new("t");
        let bit = b.state_var("x");
        b.set_next(0, !bit);
        b.set_target(AigRef::FALSE);
        let m = b.build().unwrap();
        assert!(find_witness(&m, 8).is_none());
        assert!(!reachable_within(&m, 8));
    }

    #[test]
    fn constraints_prune_transitions() {
        // 1-bit state follows input, but constraint forbids input=1,
        // so target x=1 is unreachable.
        let mut b = ModelBuilder::new("c");
        let bit = b.state_var("x");
        let i = b.input("i");
        b.set_next(0, i);
        b.set_target(bit);
        b.add_constraint(!i);
        let m = b.build().unwrap();
        assert!(!reachable_within(&m, 4));
        assert_eq!(
            reachable_sets(&m, 2)[1],
            [0u64].into_iter().collect::<std::collections::HashSet<_>>()
        );
    }
}
