//! Construction of [`Model`]s.

use std::error::Error;
use std::fmt;

use sebmc_logic::{Aig, AigRef};

use crate::model::Model;

/// Error produced by [`ModelBuilder::build`] when the model is
/// malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildModelError {
    /// Description of the first violation found.
    pub message: String,
}

impl fmt::Display for BuildModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model: {}", self.message)
    }
}

impl Error for BuildModelError {}

/// Incremental builder for [`Model`]s.
///
/// State variables and inputs are AIG primary inputs under the hood;
/// the builder records which is which. Every state variable must
/// receive a next-state function before [`ModelBuilder::build`].
///
/// ```
/// use sebmc_model::ModelBuilder;
///
/// let mut b = ModelBuilder::new("toggler");
/// let bit = b.state_var("t");
/// b.set_next(0, !bit); // t' = ¬t
/// let target = bit;
/// b.set_target(target); // reach t = 1
/// let model = b.build()?;
/// assert_eq!(model.num_state_vars(), 1);
/// # Ok::<(), sebmc_model::BuildModelError>(())
/// ```
#[derive(Debug)]
pub struct ModelBuilder {
    name: String,
    aig: Aig,
    state_inputs: Vec<usize>,
    free_inputs: Vec<usize>,
    state_names: Vec<String>,
    input_names: Vec<String>,
    init: Option<AigRef>,
    next: Vec<Option<AigRef>>,
    constraints: Vec<AigRef>,
    target: Option<AigRef>,
}

impl ModelBuilder {
    /// Creates a builder for a model called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder {
            name: name.into(),
            aig: Aig::new(),
            state_inputs: Vec::new(),
            free_inputs: Vec::new(),
            state_names: Vec::new(),
            input_names: Vec::new(),
            init: None,
            next: Vec::new(),
            constraints: Vec::new(),
            target: None,
        }
    }

    /// Adds a state variable; returns its AIG reference (current-state
    /// value).
    pub fn state_var(&mut self, name: impl Into<String>) -> AigRef {
        let r = self.aig.input();
        self.state_inputs.push(self.aig.num_inputs() - 1);
        self.state_names.push(name.into());
        self.next.push(None);
        r
    }

    /// Adds `n` state variables named `prefix0..prefix{n-1}`; returns
    /// their references (a little-endian word).
    pub fn state_vars(&mut self, n: usize, prefix: &str) -> Vec<AigRef> {
        (0..n)
            .map(|i| self.state_var(format!("{prefix}{i}")))
            .collect()
    }

    /// Adds a free (primary) input; returns its AIG reference.
    pub fn input(&mut self, name: impl Into<String>) -> AigRef {
        let r = self.aig.input();
        self.free_inputs.push(self.aig.num_inputs() - 1);
        self.input_names.push(name.into());
        r
    }

    /// Adds `n` inputs named `prefix0..prefix{n-1}`.
    pub fn inputs(&mut self, n: usize, prefix: &str) -> Vec<AigRef> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// Mutable access to the circuit for building logic.
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Sets the next-state function of state variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_next(&mut self, index: usize, f: AigRef) {
        self.next[index] = Some(f);
    }

    /// Sets all next-state functions at once (in state-variable order).
    ///
    /// # Panics
    ///
    /// Panics if `fs` has the wrong length.
    pub fn set_next_all(&mut self, fs: &[AigRef]) {
        assert_eq!(fs.len(), self.next.len(), "one next function per state var");
        for (slot, &f) in self.next.iter_mut().zip(fs) {
            *slot = Some(f);
        }
    }

    /// Sets the initial-state predicate. Defaults to "all state
    /// variables false" (the AIGER reset convention) if never called.
    pub fn set_init(&mut self, f: AigRef) {
        self.init = Some(f);
    }

    /// Sets the target (final-state) predicate `F`.
    pub fn set_target(&mut self, f: AigRef) {
        self.target = Some(f);
    }

    /// Adds an invariant constraint every transition must satisfy.
    pub fn add_constraint(&mut self, f: AigRef) {
        self.constraints.push(f);
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`BuildModelError`] if a state variable lacks a next
    /// function, no target was set, or the init/target predicates
    /// depend on free inputs.
    pub fn build(self) -> Result<Model, BuildModelError> {
        let mut next = Vec::with_capacity(self.next.len());
        for (i, f) in self.next.iter().enumerate() {
            match f {
                Some(r) => next.push(*r),
                None => {
                    return Err(BuildModelError {
                        message: format!(
                            "state variable '{}' has no next-state function",
                            self.state_names[i]
                        ),
                    })
                }
            }
        }
        let target = self.target.ok_or_else(|| BuildModelError {
            message: "no target predicate set".to_string(),
        })?;
        let Some(init) = self.init else {
            // Default: all state variables are zero.
            let mut aig = self.aig.clone();
            let word: Vec<AigRef> = self
                .state_inputs
                .iter()
                .map(|&i| aig.input_ref(i))
                .collect();
            let zero = aig.eq_const(&word, 0);
            return ModelBuilder {
                aig,
                init: Some(zero),
                next: next.into_iter().map(Some).collect(),
                target: Some(target),
                ..self
            }
            .build();
        };
        let model = Model {
            name: self.name,
            aig: self.aig,
            state_inputs: self.state_inputs,
            free_inputs: self.free_inputs,
            state_names: self.state_names,
            input_names: self.input_names,
            init,
            next,
            constraints: self.constraints,
            target,
        };
        // Init and target must be predicates over state variables only.
        for (what, root) in [("init", model.init), ("target", model.target)] {
            for node in model.aig.cone_topo(&[root]) {
                if let Some(i) = model.aig.input_index(node) {
                    if model.free_inputs.contains(&i) {
                        return Err(BuildModelError {
                            message: format!(
                                "{what} predicate depends on free input '{}'",
                                model.input_names
                                    [model.free_inputs.iter().position(|&x| x == i).unwrap()]
                            ),
                        });
                    }
                }
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_toggler() {
        let mut b = ModelBuilder::new("t");
        let bit = b.state_var("x");
        b.set_next(0, !bit);
        b.set_target(bit);
        let m = b.build().unwrap();
        assert_eq!(m.num_state_vars(), 1);
        assert!(m.eval_init(&[false]), "default init is all-zero");
        assert_eq!(m.step(&[false], &[]), vec![true]);
    }

    #[test]
    fn missing_next_is_an_error() {
        let mut b = ModelBuilder::new("bad");
        let bit = b.state_var("x");
        b.set_target(bit);
        let err = b.build().unwrap_err();
        assert!(err.message.contains("no next-state function"), "{err}");
    }

    #[test]
    fn missing_target_is_an_error() {
        let mut b = ModelBuilder::new("bad");
        let bit = b.state_var("x");
        b.set_next(0, bit);
        let err = b.build().unwrap_err();
        assert!(err.message.contains("no target"), "{err}");
    }

    #[test]
    fn input_dependent_target_is_an_error() {
        let mut b = ModelBuilder::new("bad");
        let bit = b.state_var("x");
        let inp = b.input("i");
        b.set_next(0, bit);
        let t = b.aig_mut().and(bit, inp);
        b.set_target(t);
        let err = b.build().unwrap_err();
        assert!(err.message.contains("depends on free input"), "{err}");
        assert!(err.to_string().contains("invalid model"));
    }

    #[test]
    fn explicit_init_is_used() {
        let mut b = ModelBuilder::new("m");
        let bits = b.state_vars(2, "s");
        b.set_next(0, bits[0]);
        b.set_next(1, bits[1]);
        let init = b.aig_mut().eq_const(&bits, 2);
        b.set_init(init);
        b.set_target(bits[0]);
        let m = b.build().unwrap();
        assert!(m.eval_init(&[false, true]));
        assert!(!m.eval_init(&[false, false]));
    }

    #[test]
    fn constraints_are_recorded() {
        let mut b = ModelBuilder::new("m");
        let bit = b.state_var("x");
        let inp = b.input("i");
        b.set_next(0, inp);
        b.set_target(bit);
        b.add_constraint(inp); // inputs must always be high
        let m = b.build().unwrap();
        assert!(m.eval_constraints(&[false], &[true]));
        assert!(!m.eval_constraints(&[false], &[false]));
    }
}
