//! Symbolic transition systems.
//!
//! A [`Model`] is the system `M = (S, I, TR)` of the paper plus a target
//! predicate `F`: a set of Boolean state variables with *functional*
//! next-state definitions over an [`Aig`] (the AIGER latch view),
//! primary inputs, an initial-state predicate, optional invariant
//! constraints, and the final-state predicate whose reachability the
//! bounded checks decide.
//!
//! The relational transition relation used by the encodings,
//! `TR(U, V) = ∃W. constraint(U, W) ∧ ⋀ᵢ vᵢ ↔ nextᵢ(U, W)`,
//! is derived from this functional form by the encoder crate.

use std::fmt;

use sebmc_logic::{Aig, AigRef};

/// A symbolic transition system over an And-Inverter Graph.
///
/// Constructed via [`ModelBuilder`](crate::ModelBuilder); immutable
/// afterwards.
#[derive(Clone)]
pub struct Model {
    pub(crate) name: String,
    pub(crate) aig: Aig,
    /// AIG input index backing each state variable.
    pub(crate) state_inputs: Vec<usize>,
    /// AIG input index backing each free (primary) input.
    pub(crate) free_inputs: Vec<usize>,
    pub(crate) state_names: Vec<String>,
    pub(crate) input_names: Vec<String>,
    pub(crate) init: AigRef,
    pub(crate) next: Vec<AigRef>,
    pub(crate) constraints: Vec<AigRef>,
    pub(crate) target: AigRef,
}

impl Model {
    /// The model's name (used in benchmark tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of state variables (`n` in the paper's analysis).
    pub fn num_state_vars(&self) -> usize {
        self.state_inputs.len()
    }

    /// Number of free (primary) inputs.
    pub fn num_inputs(&self) -> usize {
        self.free_inputs.len()
    }

    /// The underlying circuit.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Initial-state predicate (over state variables).
    pub fn init_ref(&self) -> AigRef {
        self.init
    }

    /// Target (final-state) predicate `F` (over state variables).
    pub fn target_ref(&self) -> AigRef {
        self.target
    }

    /// Next-state function per state variable (over state variables and
    /// inputs).
    pub fn next_refs(&self) -> &[AigRef] {
        &self.next
    }

    /// Invariant constraints that every transition must satisfy.
    pub fn constraint_refs(&self) -> &[AigRef] {
        &self.constraints
    }

    /// AIG input index backing state variable `i`.
    pub fn state_input_indices(&self) -> &[usize] {
        &self.state_inputs
    }

    /// AIG input index backing free input `i`.
    pub fn free_input_indices(&self) -> &[usize] {
        &self.free_inputs
    }

    /// Name of state variable `i`.
    pub fn state_name(&self, i: usize) -> &str {
        &self.state_names[i]
    }

    /// Name of free input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Size of the transition-relation cone (AND gates feeding the next
    /// functions and constraints) — the `|TR|` of the paper's growth
    /// analysis.
    pub fn tr_cone_size(&self) -> usize {
        let mut roots = self.next.clone();
        roots.extend_from_slice(&self.constraints);
        self.aig.cone_size(&roots)
    }

    /// Assembles a full AIG input vector from state and input values.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `inputs` have the wrong length.
    fn aig_inputs(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        assert_eq!(state.len(), self.state_inputs.len(), "state width");
        assert_eq!(inputs.len(), self.free_inputs.len(), "input width");
        let mut vals = vec![false; self.aig.num_inputs()];
        for (i, &idx) in self.state_inputs.iter().enumerate() {
            vals[idx] = state[i];
        }
        for (i, &idx) in self.free_inputs.iter().enumerate() {
            vals[idx] = inputs[i];
        }
        vals
    }

    /// Evaluates the initial-state predicate on a concrete state.
    pub fn eval_init(&self, state: &[bool]) -> bool {
        let vals = self.aig_inputs(state, &vec![false; self.num_inputs()]);
        self.aig.eval(&vals, &[self.init])[0]
    }

    /// Evaluates the target predicate on a concrete state.
    pub fn eval_target(&self, state: &[bool]) -> bool {
        let vals = self.aig_inputs(state, &vec![false; self.num_inputs()]);
        self.aig.eval(&vals, &[self.target])[0]
    }

    /// Evaluates the invariant constraints for a step from `state`
    /// under `inputs`.
    pub fn eval_constraints(&self, state: &[bool], inputs: &[bool]) -> bool {
        if self.constraints.is_empty() {
            return true;
        }
        let vals = self.aig_inputs(state, inputs);
        self.aig
            .eval(&vals, &self.constraints)
            .into_iter()
            .all(|b| b)
    }

    /// Computes the successor state of `state` under `inputs`.
    pub fn step(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        let vals = self.aig_inputs(state, inputs);
        self.aig.eval(&vals, &self.next)
    }

    /// Returns a copy of the model with a *stutter* input added: when
    /// the new input is high the state is held and constraints are
    /// waived. This is the paper's self-loop trick turning "reachable in
    /// exactly k steps" into "reachable in at most k steps" (needed to
    /// use iterative squaring at non-power-of-two bounds).
    pub fn with_self_loops(&self) -> Model {
        let mut m = self.clone();
        let stutter = m.aig.input();
        let stutter_idx = m.aig.num_inputs() - 1;
        m.free_inputs.push(stutter_idx);
        m.input_names.push("__stutter".to_string());
        for (i, f) in m.next.iter_mut().enumerate() {
            let hold = m.aig.input_ref(m.state_inputs[i]);
            *f = m.aig.ite(stutter, hold, *f);
        }
        for c in &mut m.constraints {
            *c = m.aig.or(stutter, *c);
        }
        m.name = format!("{}+loop", m.name);
        m
    }

    /// Enumerates all states satisfying the initial predicate.
    ///
    /// # Panics
    ///
    /// Panics if the model has more than 24 state bits (exhaustive
    /// enumeration is meant for ground-truth checking of small models).
    pub fn enumerate_initial_states(&self) -> Vec<Vec<bool>> {
        let n = self.num_state_vars();
        assert!(
            n <= 24,
            "initial-state enumeration limited to 24 state bits"
        );
        let mut out = Vec::new();
        for bits in 0u64..(1u64 << n) {
            let state: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if self.eval_init(&state) {
                out.push(state);
            }
        }
        out
    }
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Model {{ name: {:?}, state: {}, inputs: {}, |TR| cone: {} }}",
            self.name,
            self.num_state_vars(),
            self.num_inputs(),
            self.tr_cone_size()
        )
    }
}

/// Packs a state (little-endian bit 0 first) into a `u64` for the
/// explicit-state engines.
///
/// # Panics
///
/// Panics if the state has more than 63 bits.
pub fn pack_state(state: &[bool]) -> u64 {
    assert!(state.len() <= 63, "packed states limited to 63 bits");
    state
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

/// Inverse of [`pack_state`].
pub fn unpack_state(bits: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| bits >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    /// A 2-bit counter with reset input, for the tests below.
    fn counter2() -> Model {
        let mut b = ModelBuilder::new("counter2");
        let bits = b.state_vars(2, "c");
        let reset = b.input("reset");
        let inc = b.aig_mut().increment(&bits);
        let mut nexts = Vec::new();
        for (i, &bit) in inc.clone().iter().enumerate() {
            let _ = bit;
            let next = b.aig_mut().ite(reset, AigRef::FALSE, inc[i]);
            nexts.push(next);
        }
        b.set_next_all(&nexts);
        let init = b.aig_mut().eq_const(&bits, 0);
        b.set_init(init);
        let target = b.aig_mut().eq_const(&bits, 3);
        b.set_target(target);
        b.build().expect("valid model")
    }

    #[test]
    fn step_semantics() {
        let m = counter2();
        assert_eq!(m.num_state_vars(), 2);
        assert_eq!(m.num_inputs(), 1);
        let s0 = vec![false, false];
        let s1 = m.step(&s0, &[false]);
        assert_eq!(pack_state(&s1), 1);
        let s2 = m.step(&s1, &[false]);
        assert_eq!(pack_state(&s2), 2);
        let reset = m.step(&s2, &[true]);
        assert_eq!(pack_state(&reset), 0);
    }

    #[test]
    fn init_and_target_predicates() {
        let m = counter2();
        assert!(m.eval_init(&[false, false]));
        assert!(!m.eval_init(&[true, false]));
        assert!(m.eval_target(&[true, true]));
        assert!(!m.eval_target(&[true, false]));
    }

    #[test]
    fn enumerate_initial_states_single() {
        let m = counter2();
        let inits = m.enumerate_initial_states();
        assert_eq!(inits.len(), 1);
        assert_eq!(pack_state(&inits[0]), 0);
    }

    #[test]
    fn constraints_default_true() {
        let m = counter2();
        assert!(m.eval_constraints(&[false, true], &[true]));
    }

    #[test]
    fn self_loops_allow_stutter() {
        let m = counter2().with_self_loops();
        assert_eq!(m.num_inputs(), 2);
        let s = vec![true, false];
        // stutter=1 holds the state regardless of reset.
        let held = m.step(&s, &[false, true]);
        assert_eq!(held, s);
        let held2 = m.step(&s, &[true, true]);
        assert_eq!(held2, s);
        // stutter=0 behaves like the original.
        let normal = m.step(&s, &[false, false]);
        assert_eq!(pack_state(&normal), 2);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for bits in 0u64..16 {
            let s = unpack_state(bits, 4);
            assert_eq!(pack_state(&s), bits);
        }
    }

    #[test]
    fn tr_cone_size_positive() {
        let m = counter2();
        assert!(m.tr_cone_size() > 0);
        assert!(m.tr_cone_size() <= m.aig().num_ands());
    }

    #[test]
    #[should_panic(expected = "state width")]
    fn wrong_state_width_panics() {
        let m = counter2();
        m.step(&[false], &[false]);
    }
}
