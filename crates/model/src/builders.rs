//! The synthetic benchmark families.
//!
//! The paper evaluates on "thirteen proprietary Intel model checking
//! test cases of different sizes". Those are not available, so this
//! module provides thirteen *parameterized* synthetic hardware models
//! with the same workload shape: synchronous sequential circuits with a
//! size-diverse mix of reachable (SAT) and unreachable (UNSAT)
//! reachability queries. See `DESIGN.md` §2 for the substitution
//! rationale.
//!
//! Every builder returns a [`Model`] with a documented minimal witness
//! length (or a proof sketch of unreachability), so the explicit-state
//! oracle can confirm each family's behaviour in tests.

use sebmc_logic::rng::SplitMix64;
use sebmc_logic::{Aig, AigRef};

use crate::builder::ModelBuilder;
use crate::model::Model;

/// Per-bit multiplexer over equal-width words: `sel ? a : b`.
fn mux_words(aig: &mut Aig, sel: AigRef, a: &[AigRef], b: &[AigRef]) -> Vec<AigRef> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| aig.ite(sel, x, y)).collect()
}

/// 1. `w`-bit counter with synchronous reset.
///
/// `c' = reset ? 0 : c + 1`; target `c = 2^w − 1`.
/// Minimal witness: `2^w − 1` steps; reachable in exactly `k` steps for
/// every `k ≥ 2^w − 1` (reset restarts the count).
pub fn counter_with_reset(w: usize) -> Model {
    let mut b = ModelBuilder::new(format!("counter_reset_{w}"));
    let bits = b.state_vars(w, "c");
    let reset = b.input("reset");
    let inc = b.aig_mut().increment(&bits);
    let zero = vec![AigRef::FALSE; w];
    let nexts = mux_words(b.aig_mut(), reset, &zero, &inc);
    b.set_next_all(&nexts);
    let t = b.aig_mut().eq_const(&bits, (1u64 << w) - 1);
    b.set_target(t);
    b.build().expect("counter_with_reset is well-formed")
}

/// 2. `w`-bit counter with enable.
///
/// `c' = en ? c + 1 : c`; target `c = 2^w − 1`.
/// Reachable in exactly `k` steps for every `k ≥ 2^w − 1` (idling with
/// `en = 0` pads shorter paths).
pub fn counter_with_enable(w: usize) -> Model {
    let mut b = ModelBuilder::new(format!("counter_enable_{w}"));
    let bits = b.state_vars(w, "c");
    let en = b.input("en");
    let inc = b.aig_mut().increment(&bits);
    let nexts = mux_words(b.aig_mut(), en, &inc, &bits);
    b.set_next_all(&nexts);
    let t = b.aig_mut().eq_const(&bits, (1u64 << w) - 1);
    b.set_target(t);
    b.build().expect("counter_with_enable is well-formed")
}

/// 3. `w`-bit shift register fed by an input.
///
/// `s0' = d`, `sᵢ' = sᵢ₋₁`; target: all bits one.
/// Minimal witness: `w` steps (shift in `w` ones); reachable in exactly
/// `k` for every `k ≥ w`.
pub fn shift_register(w: usize) -> Model {
    let mut b = ModelBuilder::new(format!("shift_{w}"));
    let bits = b.state_vars(w, "s");
    let d = b.input("d");
    let mut nexts = vec![d];
    nexts.extend_from_slice(&bits[..w - 1]);
    b.set_next_all(&nexts);
    let t = b.aig_mut().and_many(&bits);
    b.set_target(t);
    b.build().expect("shift_register is well-formed")
}

/// 4. `w`-bit autonomous Fibonacci LFSR.
///
/// Feedback `f = s_{w-1} ⊕ s_{tap}` with `tap = w/2`; shift left from
/// seed `…001`. Target: the state the LFSR reaches after exactly
/// `target_after` steps (computed by simulation), so the instance is
/// SAT exactly at `k ∈ {target_after + m·period}` and UNSAT at every
/// other bound — a deterministic needle.
pub fn lfsr(w: usize, target_after: usize) -> Model {
    assert!(w >= 2, "lfsr needs at least 2 bits");
    let mut b = ModelBuilder::new(format!("lfsr_{w}_{target_after}"));
    let bits = b.state_vars(w, "s");
    let tap = w / 2;
    let feedback = b.aig_mut().xor(bits[w - 1], bits[tap]);
    let mut nexts = vec![feedback];
    nexts.extend_from_slice(&bits[..w - 1]);
    b.set_next_all(&nexts);
    let init = b.aig_mut().eq_const(&bits, 1);
    b.set_init(init);
    // Simulate to find the target value.
    let mut state = 1u64;
    for _ in 0..target_after {
        let fb = (state >> (w - 1) & 1) ^ (state >> tap & 1);
        state = (state << 1 | fb) & ((1 << w) - 1);
    }
    let t = b.aig_mut().eq_const(&bits, state);
    b.set_target(t);
    b.build().expect("lfsr is well-formed")
}

/// 5. `w`-bit autonomous Gray-code counter.
///
/// Internally converts Gray → binary, increments, converts back.
/// Target: the Gray encoding of `2^w − 1`, reached after exactly
/// `2^w − 1` steps (then periodically).
pub fn gray_counter(w: usize) -> Model {
    let mut b = ModelBuilder::new(format!("gray_{w}"));
    let g = b.state_vars(w, "g");
    // Gray to binary: b_{w-1} = g_{w-1}; b_i = g_i ⊕ b_{i+1}.
    let mut bin = vec![AigRef::FALSE; w];
    bin[w - 1] = g[w - 1];
    for i in (0..w - 1).rev() {
        bin[i] = b.aig_mut().xor(g[i], bin[i + 1]);
    }
    let inc = b.aig_mut().increment(&bin);
    // Binary to Gray: g_i = b_i ⊕ b_{i+1} (b_w = 0).
    let mut nexts = Vec::with_capacity(w);
    for i in 0..w {
        let hi = if i + 1 < w { inc[i + 1] } else { AigRef::FALSE };
        nexts.push(b.aig_mut().xor(inc[i], hi));
    }
    b.set_next_all(&nexts);
    let max = (1u64 << w) - 1;
    let t = b.aig_mut().eq_const(&g, max ^ (max >> 1));
    b.set_target(t);
    b.build().expect("gray_counter is well-formed")
}

/// 6. `w`-bit Johnson (twisted-ring) counter.
///
/// `s0' = ¬s_{w-1}`, `sᵢ' = sᵢ₋₁`; period `2w`; target: all ones,
/// reached after exactly `w` steps (then every `2w`).
pub fn johnson_counter(w: usize) -> Model {
    let mut b = ModelBuilder::new(format!("johnson_{w}"));
    let bits = b.state_vars(w, "j");
    let mut nexts = vec![!bits[w - 1]];
    nexts.extend_from_slice(&bits[..w - 1]);
    b.set_next_all(&nexts);
    let t = b.aig_mut().and_many(&bits);
    b.set_target(t);
    b.build().expect("johnson_counter is well-formed")
}

/// 7. Round-robin arbiter over `n` clients.
///
/// A one-hot token rotates each cycle; a grant latch records
/// `requestᵢ ∧ tokenᵢ`. Target: grant to client `n−1`. Minimal witness:
/// `n` steps (token reaches position `n−1` at step `n−1`, grant latches
/// one step later), then whenever `k ≡ 0 (mod n)`.
pub fn round_robin_arbiter(n: usize) -> Model {
    assert!(n >= 2, "arbiter needs at least 2 clients");
    let mut b = ModelBuilder::new(format!("arbiter_{n}"));
    let token = b.state_vars(n, "t");
    let grant = b.state_vars(n, "g");
    let req = b.inputs(n, "r");
    // Token rotates unconditionally.
    let mut nexts = Vec::with_capacity(2 * n);
    for i in 0..n {
        nexts.push(token[(i + n - 1) % n]);
    }
    for i in 0..n {
        nexts.push(b.aig_mut().and(req[i], token[i]));
    }
    b.set_next_all(&nexts);
    // Init: token at position 0, no grants.
    let mut init = token[0];
    for &t in &token[1..] {
        init = b.aig_mut().and(init, !t);
    }
    for &g in &grant {
        init = b.aig_mut().and(init, !g);
    }
    b.set_init(init);
    b.set_target(grant[n - 1]);
    b.build().expect("round_robin_arbiter is well-formed")
}

/// 8. Interlocked traffic-light pair (UNSAT family).
///
/// A token bit alternates; each light's green latch can only be set
/// while holding the token (`greenA' = token ∧ reqA`,
/// `greenB' = ¬token ∧ reqB`). Both-green is unreachable — but proving
/// it needs one step of reasoning, it is not syntactically false.
pub fn traffic_light() -> Model {
    let mut b = ModelBuilder::new("traffic");
    let token = b.state_var("token");
    let green_a = b.state_var("greenA");
    let green_b = b.state_var("greenB");
    let req_a = b.input("reqA");
    let req_b = b.input("reqB");
    let na = b.aig_mut().and(token, req_a);
    let nb = b.aig_mut().and(!token, req_b);
    b.set_next_all(&[!token, na, nb]);
    let t = b.aig_mut().and(green_a, green_b);
    b.set_target(t);
    b.build().expect("traffic_light is well-formed")
}

/// 9. Elevator over `2^w` floors.
///
/// State: floor (w bits), direction, door. Inputs: `move`, `open`.
/// The car moves one floor per `move` step while the door is shut;
/// direction flips at the extremes; `door' = open` and opening
/// suppresses movement. Target: top floor with the door open.
/// Minimal witness: `2^w` steps (`2^w − 1` moves, then one open).
pub fn elevator(w: usize) -> Model {
    let mut b = ModelBuilder::new(format!("elevator_{w}"));
    let floor = b.state_vars(w, "f");
    let dir = b.state_var("up");
    let door = b.state_var("door");
    let mv = b.input("move");
    let open = b.input("open");
    let top = (1u64 << w) - 1;
    let at_top = b.aig_mut().eq_const(&floor, top);
    let at_bottom = b.aig_mut().eq_const(&floor, 0);
    // Effective direction: forced up at the bottom, down at the top.
    let dir_mid = b.aig_mut().ite(at_bottom, AigRef::TRUE, dir);
    let eff_dir = b.aig_mut().ite(at_top, AigRef::FALSE, dir_mid);
    let inc = b.aig_mut().increment(&floor);
    let ones = vec![AigRef::TRUE; w];
    let dec = b.aig_mut().add_words(&floor, &ones); // floor − 1 (mod 2^w)
    let moved = mux_words(b.aig_mut(), eff_dir, &inc, &dec);
    let move_eff = b.aig_mut().and(mv, !open);
    let next_floor = mux_words(b.aig_mut(), move_eff, &moved, &floor);
    let mut nexts = next_floor;
    nexts.push(eff_dir);
    nexts.push(open);
    b.set_next_all(&nexts);
    let t2 = b.aig_mut().eq_const(&floor, top);
    let t = b.aig_mut().and(t2, door);
    b.set_target(t);
    b.build().expect("elevator is well-formed")
}

/// 10. Circular FIFO with `2^p` slots of one data bit each.
///
/// State: head (p), tail (p), count (p+1), data (2^p). Inputs: `push`,
/// `pop`, `din`. Pushes append `din` at `tail` when not full; pops
/// advance `head` when not empty. Target: full with all-ones data.
/// Minimal witness: `2^p` pushes of 1.
pub fn fifo(p: usize) -> Model {
    let depth = 1usize << p;
    let mut b = ModelBuilder::new(format!("fifo_{depth}"));
    let head = b.state_vars(p, "h");
    let tail = b.state_vars(p, "t");
    let count = b.state_vars(p + 1, "n");
    let data = b.state_vars(depth, "d");
    let push = b.input("push");
    let pop = b.input("pop");
    let din = b.input("din");
    let full = b.aig_mut().eq_const(&count, depth as u64);
    let empty = b.aig_mut().eq_const(&count, 0);
    let push_eff = b.aig_mut().and(push, !full);
    let pop_eff = b.aig_mut().and(pop, !empty);
    let inc_only = b.aig_mut().and(push_eff, !pop_eff);
    let dec_only = b.aig_mut().and(pop_eff, !push_eff);
    let count_inc = b.aig_mut().increment(&count);
    let ones = vec![AigRef::TRUE; p + 1];
    let count_dec = b.aig_mut().add_words(&count, &ones);
    let c1 = mux_words(b.aig_mut(), inc_only, &count_inc, &count);
    let next_count = mux_words(b.aig_mut(), dec_only, &count_dec, &c1);
    let tail_inc = b.aig_mut().increment(&tail);
    let next_tail = mux_words(b.aig_mut(), push_eff, &tail_inc, &tail);
    let head_inc = b.aig_mut().increment(&head);
    let next_head = mux_words(b.aig_mut(), pop_eff, &head_inc, &head);
    let mut next_data = Vec::with_capacity(depth);
    for (i, &slot) in data.iter().enumerate() {
        let here = b.aig_mut().eq_const(&tail, i as u64);
        let write = b.aig_mut().and(push_eff, here);
        next_data.push(b.aig_mut().ite(write, din, slot));
    }
    let mut nexts = next_head;
    nexts.extend(next_tail);
    nexts.extend(next_count);
    nexts.extend(next_data);
    b.set_next_all(&nexts);
    let all_ones = b.aig_mut().and_many(&data);
    let t = b.aig_mut().and(full, all_ones);
    b.set_target(t);
    b.build().expect("fifo is well-formed")
}

/// 11. Token ring of `n` stations.
///
/// The single token moves one station per step when `pass` is high.
/// Target: token at station `n−1`; minimal witness `n−1` steps.
pub fn token_ring(n: usize) -> Model {
    assert!(n >= 2, "token ring needs at least 2 stations");
    let mut b = ModelBuilder::new(format!("ring_{n}"));
    let t = b.state_vars(n, "t");
    let pass = b.input("pass");
    let mut nexts = Vec::with_capacity(n);
    for i in 0..n {
        let rotated = t[(i + n - 1) % n];
        nexts.push(b.aig_mut().ite(pass, rotated, t[i]));
    }
    b.set_next_all(&nexts);
    let mut init = t[0];
    for &bit in &t[1..] {
        init = b.aig_mut().and(init, !bit);
    }
    b.set_init(init);
    b.set_target(t[n - 1]);
    b.build().expect("token_ring is well-formed")
}

/// 12. Peterson's mutual-exclusion protocol (UNSAT family).
///
/// Two processes with 2-bit program counters (idle → want → wait →
/// crit), per-process flags and a turn bit; a scheduler input picks
/// which process steps. Target: both in the critical section — Peterson
/// guarantees this is unreachable at every bound.
pub fn peterson() -> Model {
    let mut b = ModelBuilder::new("peterson");
    let pc0 = b.state_vars(2, "pc0_"); // [lo, hi]
    let pc1 = b.state_vars(2, "pc1_");
    let f0 = b.state_var("flag0");
    let f1 = b.state_var("flag1");
    let turn = b.state_var("turn"); // whose turn it is (0 or 1)
    let sched = b.input("sched"); // 0: process 0 steps, 1: process 1

    struct Proc {
        lo: AigRef,
        hi: AigRef,
        flag: AigRef,
        scheduled: AigRef,
        can_enter: AigRef,
    }

    let build_next = |aig: &mut Aig, p: &Proc| -> (AigRef, AigRef, AigRef) {
        let is0 = aig.and(!p.hi, !p.lo);
        let is1 = aig.and(!p.hi, p.lo);
        let is2 = aig.and(p.hi, !p.lo);
        let is3 = aig.and(p.hi, p.lo);
        // Stepped: 0→1, 1→2, 2→(can ? 3 : 2), 3→0.
        let enter = aig.and(is2, p.can_enter);
        let lo_step = aig.or(is0, enter);
        let hi_step = aig.or(is1, is2);
        let lo_next = aig.ite(p.scheduled, lo_step, p.lo);
        let hi_next = aig.ite(p.scheduled, hi_step, p.hi);
        // Flag: set on 0→1, cleared on 3→0.
        let set = aig.and(p.scheduled, is0);
        let clear = aig.and(p.scheduled, is3);
        let keep = aig.and(p.flag, !clear);
        let flag_next = aig.or(set, keep);
        (lo_next, hi_next, flag_next)
    };

    let sched0 = !sched;
    // can_enter for p0: ¬flag1 ∨ turn = 0; for p1: ¬flag0 ∨ turn = 1.
    let ce0 = b.aig_mut().or(!f1, !turn);
    let ce1 = b.aig_mut().or(!f0, turn);
    let p0 = Proc {
        lo: pc0[0],
        hi: pc0[1],
        flag: f0,
        scheduled: sched0,
        can_enter: ce0,
    };
    let p1 = Proc {
        lo: pc1[0],
        hi: pc1[1],
        flag: f1,
        scheduled: sched,
        can_enter: ce1,
    };
    let (l0, h0, nf0) = build_next(b.aig_mut(), &p0);
    let (l1, h1, nf1) = build_next(b.aig_mut(), &p1);
    // Turn is set to the *other* process id on the want→wait step.
    let is1_0 = b.aig_mut().and(!pc0[1], pc0[0]);
    let is1_1 = b.aig_mut().and(!pc1[1], pc1[0]);
    let w0 = b.aig_mut().and(sched0, is1_0); // p0 sets turn := 1
    let w1 = b.aig_mut().and(sched, is1_1); // p1 sets turn := 0
    let t1 = b.aig_mut().ite(w1, AigRef::FALSE, turn);
    let next_turn = b.aig_mut().ite(w0, AigRef::TRUE, t1);

    b.set_next_all(&[l0, h0, l1, h1, nf0, nf1, next_turn]);
    let crit0 = b.aig_mut().and(pc0[1], pc0[0]);
    let crit1 = b.aig_mut().and(pc1[1], pc1[0]);
    let both = b.aig_mut().and(crit0, crit1);
    b.set_target(both);
    b.build().expect("peterson is well-formed")
}

/// 13. Seeded random FSM.
///
/// `bits` state variables whose next functions are random AIG
/// expressions over the state and `inputs` free inputs; the target is a
/// random cube of state literals. Reachability is whatever it is — the
/// explicit-state oracle decides in tests; in the paper-scale suite the
/// wide variants supply the *hard* instances.
pub fn random_fsm(bits: usize, inputs: usize, seed: u64) -> Model {
    let mut rng = SplitMix64::new(seed);
    let mut b = ModelBuilder::new(format!("random_{bits}_{inputs}_{seed}"));
    let state = b.state_vars(bits, "x");
    let ins = b.inputs(inputs, "i");
    let mut pool: Vec<AigRef> = state.iter().chain(ins.iter()).copied().collect();
    let gates = 3 * bits;
    for _ in 0..gates {
        let a = pool[rng.below(pool.len())];
        let bb = pool[rng.below(pool.len())];
        let aa = if rng.coin() { a } else { !a };
        let bbb = if rng.coin() { bb } else { !bb };
        let g = match rng.below(3) {
            0 => b.aig_mut().and(aa, bbb),
            1 => b.aig_mut().or(aa, bbb),
            _ => b.aig_mut().xor(aa, bbb),
        };
        pool.push(g);
    }
    let nexts: Vec<AigRef> = (0..bits)
        .map(|_| {
            let g = pool[rng.below(pool.len())];
            if rng.coin() {
                g
            } else {
                !g
            }
        })
        .collect();
    b.set_next_all(&nexts);
    // Target: a cube of ⌈bits/2⌉ random state literals, at least 2.
    let cube_len = (bits / 2).clamp(2, 6);
    let mut idx: Vec<usize> = (0..bits).collect();
    for i in (1..idx.len()).rev() {
        idx.swap(i, rng.below(i + 1));
    }
    let mut target = AigRef::TRUE;
    for &i in idx.iter().take(cube_len) {
        let lit = if rng.coin() { state[i] } else { !state[i] };
        target = b.aig_mut().and(target, lit);
    }
    b.set_target(target);
    b.build().expect("random_fsm is well-formed")
}

/// 13b. Seeded random FSM with an explicit gate budget.
///
/// Like [`random_fsm`] but the combinational cloud size is a parameter
/// and every gate is guaranteed to lie in the transition cone (each
/// next function folds over a slice of the cloud). Used by experiment
/// E2, which needs the paper's `|TR| ≫ n` regime.
pub fn dense_fsm(bits: usize, inputs: usize, gates: usize, seed: u64) -> Model {
    let mut rng = SplitMix64::new(seed);
    let mut b = ModelBuilder::new(format!("dense_{bits}_{gates}_{seed}"));
    let state = b.state_vars(bits, "x");
    let ins = b.inputs(inputs, "i");
    let mut pool: Vec<AigRef> = state.iter().chain(ins.iter()).copied().collect();
    for _ in 0..gates {
        let a = pool[rng.below(pool.len())];
        let bb = pool[rng.below(pool.len())];
        let aa = if rng.coin() { a } else { !a };
        let bbb = if rng.coin() { bb } else { !bb };
        let g = match rng.below(3) {
            0 => b.aig_mut().and(aa, bbb),
            1 => b.aig_mut().or(aa, bbb),
            _ => b.aig_mut().xor(aa, bbb),
        };
        pool.push(g);
    }
    for i in 0..bits {
        let members: Vec<AigRef> = pool.iter().copied().skip(i).step_by(bits).collect();
        let mut f = members[0];
        for &g in &members[1..] {
            f = b.aig_mut().xor(f, g);
        }
        b.set_next(i, f);
    }
    let target = {
        let cube_len = (bits / 2).clamp(2, 6);
        let mut t = AigRef::TRUE;
        for &s in state.iter().take(cube_len) {
            let lit = if rng.coin() { s } else { !s };
            t = b.aig_mut().and(t, lit);
        }
        t
    };
    b.set_target(target);
    b.build().expect("dense_fsm is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::{min_steps_to_target, reachable_in_exactly};

    #[test]
    fn counter_reset_minimum() {
        let m = counter_with_reset(3);
        assert_eq!(min_steps_to_target(&m, 10), Some(7));
        assert!(reachable_in_exactly(&m, 8), "reset allows longer paths");
    }

    #[test]
    fn counter_enable_minimum() {
        let m = counter_with_enable(3);
        assert_eq!(min_steps_to_target(&m, 10), Some(7));
        assert!(reachable_in_exactly(&m, 9), "idling pads paths");
    }

    #[test]
    fn shift_register_minimum() {
        let m = shift_register(4);
        assert_eq!(min_steps_to_target(&m, 8), Some(4));
    }

    #[test]
    fn lfsr_needle() {
        let m = lfsr(4, 6);
        assert_eq!(min_steps_to_target(&m, 12), Some(6));
        assert!(!reachable_in_exactly(&m, 5));
        assert!(!reachable_in_exactly(&m, 7), "autonomous: exact needle");
        assert!(reachable_in_exactly(&m, 6));
    }

    #[test]
    fn gray_counter_minimum() {
        let m = gray_counter(3);
        assert_eq!(min_steps_to_target(&m, 10), Some(7));
        // Autonomous with period 8.
        assert!(!reachable_in_exactly(&m, 8));
        assert!(reachable_in_exactly(&m, 15));
    }

    #[test]
    fn johnson_counter_minimum_and_period() {
        let m = johnson_counter(4);
        assert_eq!(min_steps_to_target(&m, 16), Some(4));
        assert!(reachable_in_exactly(&m, 12), "period 2w = 8");
        assert!(!reachable_in_exactly(&m, 6));
    }

    #[test]
    fn arbiter_grant_timing() {
        let m = round_robin_arbiter(3);
        // Token at position 2 at step 2; grant latched at step 3.
        assert_eq!(min_steps_to_target(&m, 9), Some(3));
        assert!(reachable_in_exactly(&m, 6));
        assert!(!reachable_in_exactly(&m, 4));
    }

    #[test]
    fn traffic_is_unreachable() {
        let m = traffic_light();
        for k in 0..8 {
            assert!(!reachable_in_exactly(&m, k), "bound {k}");
        }
    }

    #[test]
    fn elevator_minimum() {
        let m = elevator(2);
        // 3 moves to the top floor, then one step opening the door.
        assert_eq!(min_steps_to_target(&m, 10), Some(4));
    }

    #[test]
    fn fifo_minimum() {
        let m = fifo(1); // 2 slots
        assert_eq!(min_steps_to_target(&m, 6), Some(2));
    }

    #[test]
    fn token_ring_minimum() {
        let m = token_ring(4);
        assert_eq!(min_steps_to_target(&m, 8), Some(3));
        assert!(reachable_in_exactly(&m, 5), "token can wait");
    }

    #[test]
    fn peterson_mutual_exclusion_holds() {
        let m = peterson();
        for k in 0..10 {
            assert!(!reachable_in_exactly(&m, k), "mutex violated at bound {k}");
        }
    }

    #[test]
    fn peterson_progress_possible() {
        // Sanity: each process *can* reach its critical section alone.
        let m = peterson();
        // pc0 = 3 (crit) is state bits 0,1 both true; check via explicit
        // search over a modified target using simulation.
        let mut found = false;
        let mut states = vec![vec![false; 7]];
        for _ in 0..8 {
            let mut next_states = Vec::new();
            for s in &states {
                for sched in [false, true] {
                    let ns = m.step(s, &[sched]);
                    if ns[0] && ns[1] {
                        found = true;
                    }
                    next_states.push(ns);
                }
            }
            states = next_states;
            states.dedup();
            if found {
                break;
            }
        }
        assert!(found, "process 0 can reach its critical section");
    }

    #[test]
    fn dense_fsm_has_requested_cone() {
        let m = dense_fsm(6, 2, 300, 1);
        assert!(
            m.tr_cone_size() >= 250,
            "most of the 300-gate cloud must be in the cone, got {}",
            m.tr_cone_size()
        );
        // Deterministic for a fixed seed.
        let m2 = dense_fsm(6, 2, 300, 1);
        let s = vec![true, false, true, false, true, true];
        assert_eq!(m.step(&s, &[false, true]), m2.step(&s, &[false, true]));
    }

    #[test]
    fn random_fsm_is_deterministic() {
        let a = random_fsm(4, 1, 42);
        let b = random_fsm(4, 1, 42);
        assert_eq!(a.num_state_vars(), b.num_state_vars());
        let s = vec![true, false, true, false];
        assert_eq!(a.step(&s, &[true]), b.step(&s, &[true]));
        let c = random_fsm(4, 1, 43);
        // Different seeds give different dynamics with high probability;
        // at minimum the model must still be well-formed.
        assert_eq!(c.num_state_vars(), 4);
    }
}
