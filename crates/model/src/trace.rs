//! Witness traces and their validation.
//!
//! Every engine in the reproduction must produce a checkable witness
//! when it claims reachability; [`Model::check_trace`] replays the
//! trace through the concrete simulator. This is the cross-engine
//! soundness oracle used throughout the test suite.

use std::error::Error;
use std::fmt;

use crate::model::{pack_state, Model};

/// A concrete execution: `states.len() == inputs.len() + 1`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Trace {
    /// Visited states, from the initial state to the final state.
    pub states: Vec<Vec<bool>>,
    /// Input vector applied at each step.
    pub inputs: Vec<Vec<bool>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of steps (transitions) in the trace.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Renders states as packed integers, for debugging.
    pub fn packed_states(&self) -> Vec<u64> {
        self.states.iter().map(|s| pack_state(s)).collect()
    }

    /// Renders the trace in the HWMCC stimulus-witness format: `1`
    /// (bad-state reachable), `b0`, the initial latch values, one
    /// input-vector line per step, and the `.` terminator. This is the
    /// on-disk format of the CLI's witness output and the service's
    /// streamed witness files.
    pub fn to_hwmcc(&self) -> String {
        let bits =
            |v: &[bool]| -> String { v.iter().map(|&b| if b { '1' } else { '0' }).collect() };
        let mut out = String::with_capacity(16 + self.states.len() * 8);
        out.push_str("1\nb0\n");
        out.push_str(&bits(self.states.first().map_or(&[][..], |s| s)));
        out.push('\n');
        for step in &self.inputs {
            out.push_str(&bits(step));
            out.push('\n');
        }
        out.push_str(".\n");
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Inputs are printed *between* the states they transition:
        // `0 -[10]-> 1`. Without them a failed replay cannot be
        // reproduced (the successor of a state depends on the inputs),
        // so diagnostics used to be unactionable for any model with
        // free inputs. Input-free models keep the compact arrow form.
        write!(f, "trace[{} steps]:", self.len())?;
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                let inputs = self.inputs.get(i - 1).map_or(&[][..], |v| v);
                if inputs.is_empty() {
                    write!(f, " ->")?;
                } else {
                    let bits: String = inputs.iter().map(|&b| if b { '1' } else { '0' }).collect();
                    write!(f, " -[{bits}]->")?;
                }
            }
            write!(f, " {}", pack_state(s))?;
        }
        Ok(())
    }
}

/// Reason a trace fails validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// `states`/`inputs` lengths are inconsistent.
    MalformedShape {
        /// Number of states in the trace.
        states: usize,
        /// Number of input vectors in the trace.
        inputs: usize,
    },
    /// The first state does not satisfy the initial predicate.
    NotInitial,
    /// The invariant constraints fail at the given step.
    ConstraintViolated {
        /// Step index at which the constraint fails.
        step: usize,
    },
    /// `states[step+1]` is not the successor of `states[step]`.
    NotASuccessor {
        /// Step index of the bad transition.
        step: usize,
    },
    /// The last state does not satisfy the target predicate.
    TargetMissed,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MalformedShape { states, inputs } => write!(
                f,
                "malformed trace: {states} states with {inputs} input vectors"
            ),
            TraceError::NotInitial => write!(f, "first state violates the initial predicate"),
            TraceError::ConstraintViolated { step } => {
                write!(f, "invariant constraint violated at step {step}")
            }
            TraceError::NotASuccessor { step } => {
                write!(f, "state at step {} is not a valid successor", step + 1)
            }
            TraceError::TargetMissed => write!(f, "final state violates the target predicate"),
        }
    }
}

impl Error for TraceError {}

impl Model {
    /// Validates that `trace` is a real execution of this model from an
    /// initial state to a target state.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered.
    pub fn check_trace(&self, trace: &Trace) -> Result<(), TraceError> {
        if trace.states.len() != trace.inputs.len() + 1 {
            return Err(TraceError::MalformedShape {
                states: trace.states.len(),
                inputs: trace.inputs.len(),
            });
        }
        if !self.eval_init(&trace.states[0]) {
            return Err(TraceError::NotInitial);
        }
        for (i, ins) in trace.inputs.iter().enumerate() {
            if !self.eval_constraints(&trace.states[i], ins) {
                return Err(TraceError::ConstraintViolated { step: i });
            }
            let next = self.step(&trace.states[i], ins);
            if next != trace.states[i + 1] {
                return Err(TraceError::NotASuccessor { step: i });
            }
        }
        let last = trace.states.last().expect("at least one state");
        if !self.eval_target(last) {
            return Err(TraceError::TargetMissed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    /// 2-bit counter without inputs; target = 3.
    fn counter() -> Model {
        let mut b = ModelBuilder::new("c");
        let bits = b.state_vars(2, "c");
        let inc = b.aig_mut().increment(&bits);
        b.set_next_all(&inc);
        let t = b.aig_mut().eq_const(&bits, 3);
        b.set_target(t);
        b.build().unwrap()
    }

    fn good_trace() -> Trace {
        Trace {
            states: vec![
                vec![false, false],
                vec![true, false],
                vec![false, true],
                vec![true, true],
            ],
            inputs: vec![vec![], vec![], vec![]],
        }
    }

    #[test]
    fn valid_trace_passes() {
        let m = counter();
        let t = good_trace();
        assert_eq!(m.check_trace(&t), Ok(()));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.packed_states(), vec![0, 1, 2, 3]);
    }

    /// Regression: `Display` used to print only the packed states, so
    /// a failed replay on a model with free inputs could not be
    /// reproduced from the diagnostic. Inputs now ride along.
    #[test]
    fn display_shows_inputs_between_states() {
        let t = Trace {
            states: vec![vec![false], vec![false], vec![true]],
            inputs: vec![vec![false, true], vec![true, true]],
        };
        assert_eq!(t.to_string(), "trace[2 steps]: 0 -[01]-> 0 -[11]-> 1");
        // Input-free models keep a compact arrow.
        let t = good_trace();
        assert_eq!(t.to_string(), "trace[3 steps]: 0 -> 1 -> 2 -> 3");
    }

    #[test]
    fn hwmcc_rendering_matches_the_witness_convention() {
        let t = Trace {
            states: vec![vec![true, false], vec![false, true]],
            inputs: vec![vec![true]],
        };
        assert_eq!(t.to_hwmcc(), "1\nb0\n10\n1\n.\n");
        let empty = Trace::new();
        assert_eq!(empty.to_hwmcc(), "1\nb0\n\n.\n", "degenerate trace");
    }

    #[test]
    fn malformed_shape_detected() {
        let m = counter();
        let mut t = good_trace();
        t.inputs.pop();
        assert!(matches!(
            m.check_trace(&t),
            Err(TraceError::MalformedShape { .. })
        ));
    }

    #[test]
    fn wrong_initial_state_detected() {
        let m = counter();
        let mut t = good_trace();
        t.states[0] = vec![true, false];
        // 1 -> 2 -> 3 is a fine path but 1 is not initial.
        t.states.remove(1);
        t.inputs.pop();
        assert_eq!(m.check_trace(&t), Err(TraceError::NotInitial));
    }

    #[test]
    fn non_successor_detected() {
        let m = counter();
        let mut t = good_trace();
        t.states[2] = vec![true, true]; // 0 -> 1 -> 3?! no
        assert_eq!(
            m.check_trace(&t),
            Err(TraceError::NotASuccessor { step: 1 })
        );
    }

    #[test]
    fn target_miss_detected() {
        let m = counter();
        let mut t = good_trace();
        t.states.pop();
        t.inputs.pop();
        assert_eq!(m.check_trace(&t), Err(TraceError::TargetMissed));
    }

    #[test]
    fn constraint_violation_detected() {
        let mut b = ModelBuilder::new("c");
        let bit = b.state_var("x");
        let i = b.input("go");
        b.set_next(0, i);
        b.set_target(bit);
        b.add_constraint(i); // go must always be high
        let m = b.build().unwrap();
        let bad = Trace {
            states: vec![vec![false], vec![false], vec![true]],
            inputs: vec![vec![false], vec![true]],
        };
        assert_eq!(
            m.check_trace(&bad),
            Err(TraceError::ConstraintViolated { step: 0 })
        );
        let good = Trace {
            states: vec![vec![false], vec![true]],
            inputs: vec![vec![true]],
        };
        assert_eq!(m.check_trace(&good), Ok(()));
    }

    #[test]
    fn error_display_messages() {
        assert!(TraceError::NotInitial.to_string().contains("initial"));
        assert!(TraceError::TargetMissed.to_string().contains("target"));
        assert!(TraceError::NotASuccessor { step: 2 }
            .to_string()
            .contains("step 3"));
    }
}
