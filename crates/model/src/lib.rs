//! Transition systems and benchmark workloads for the *"Space-Efficient
//! Bounded Model Checking"* (DATE 2005) reproduction.
//!
//! * [`Model`] — a symbolic transition system `M = (S, I, TR)` plus the
//!   target predicate `F`, in functional (AIGER-latch) form over an
//!   And-Inverter Graph; built with [`ModelBuilder`].
//! * [`Trace`] — checkable witness traces ([`Model::check_trace`]
//!   replays them through the concrete simulator).
//! * [`explicit`] — exhaustive ground-truth bounded reachability for
//!   small models; every symbolic engine is validated against it.
//! * [`builders`] / [`suite`] — the thirteen synthetic benchmark
//!   families standing in for the paper's thirteen proprietary Intel
//!   test cases (see `DESIGN.md` §2).
//!
//! # Example
//!
//! ```
//! use sebmc_model::builders::counter_with_reset;
//! use sebmc_model::explicit::min_steps_to_target;
//!
//! let model = counter_with_reset(3);
//! // The 3-bit counter first hits its maximum after 7 steps.
//! assert_eq!(min_steps_to_target(&model, 10), Some(7));
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod builders;
pub mod explicit;
pub mod model;
pub mod suite;
pub mod trace;

pub use builder::{BuildModelError, ModelBuilder};
pub use model::{pack_state, unpack_state, Model};
pub use suite::{suite13, suite13_small, BOUNDS_PER_MODEL};
pub use trace::{Trace, TraceError};
