//! The benchmark suites.
//!
//! [`suite13`] mirrors the paper's "thirteen test cases of different
//! sizes": a size-diverse mix whose 13 × 18 = 234 instances (bounds
//! 1..=18) reproduce the shape of the paper's solved-counts experiment.
//! [`suite13_small`] provides small versions of the same thirteen
//! families for exhaustive ground-truth validation in tests.

use crate::builders;
use crate::model::Model;

/// Number of bounds per model in the paper's experiment: 13 models ×
/// 18 bounds = 234 instances.
pub const BOUNDS_PER_MODEL: usize = 18;

/// The paper-scale benchmark suite: thirteen models of different sizes.
///
/// The mix is tuned so that, under per-instance resource limits,
/// classical SAT-based BMC solves the most instances, jSAT somewhat
/// fewer, and general-purpose QBF solvers almost none — the shape of
/// the paper's §3 result.
pub fn suite13() -> Vec<Model> {
    vec![
        builders::counter_with_reset(4),
        builders::counter_with_enable(10),
        builders::shift_register(16),
        builders::lfsr(12, 14),
        builders::gray_counter(5),
        builders::johnson_counter(9),
        builders::round_robin_arbiter(8),
        builders::traffic_light(),
        builders::elevator(4),
        builders::fifo(3),
        builders::token_ring(12),
        builders::peterson(),
        builders::random_fsm(28, 3, 2005),
    ]
}

/// Small versions of the thirteen families (≤ ~12 state+input bits), so
/// the explicit-state oracle can validate every engine on every family.
pub fn suite13_small() -> Vec<Model> {
    vec![
        builders::counter_with_reset(3),
        builders::counter_with_enable(3),
        builders::shift_register(4),
        builders::lfsr(4, 6),
        builders::gray_counter(3),
        builders::johnson_counter(4),
        builders::round_robin_arbiter(3),
        builders::traffic_light(),
        builders::elevator(2),
        builders::fifo(1),
        builders::token_ring(4),
        builders::peterson(),
        builders::random_fsm(5, 1, 2005),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_suites_have_thirteen_models() {
        assert_eq!(suite13().len(), 13);
        assert_eq!(suite13_small().len(), 13);
        assert_eq!(suite13().len() * BOUNDS_PER_MODEL, 234);
    }

    #[test]
    fn names_are_unique() {
        for suite in [suite13(), suite13_small()] {
            let mut names: Vec<&str> = suite.iter().map(super::super::model::Model::name).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate model names");
        }
    }

    #[test]
    fn small_suite_is_explicitly_checkable() {
        for m in suite13_small() {
            assert!(
                m.num_state_vars() + m.num_inputs() <= 22,
                "model '{}' too large for the explicit oracle",
                m.name()
            );
        }
    }

    #[test]
    fn paper_suite_has_diverse_sizes() {
        let suite = suite13();
        let min = suite
            .iter()
            .map(super::super::model::Model::num_state_vars)
            .min()
            .unwrap();
        let max = suite
            .iter()
            .map(super::super::model::Model::num_state_vars)
            .max()
            .unwrap();
        assert!(min <= 4, "suite should contain small models");
        assert!(max >= 20, "suite should contain large models");
    }

    #[test]
    fn all_models_simulate_one_step() {
        for m in suite13().iter().chain(suite13_small().iter()) {
            let inits = if m.num_state_vars() <= 22 {
                m.enumerate_initial_states()
            } else {
                vec![vec![false; m.num_state_vars()]]
            };
            assert!(
                !inits.is_empty(),
                "model '{}' has no initial state",
                m.name()
            );
            let s0 = &inits[0];
            let inputs = vec![false; m.num_inputs()];
            let s1 = m.step(s0, &inputs);
            assert_eq!(s1.len(), m.num_state_vars());
        }
    }
}
