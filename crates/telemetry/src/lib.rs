//! Dependency-free telemetry for the sebmc checking stack.
//!
//! The paper's argument is a *resource profile* — memory stays flat
//! while time grows — and the rest of the workspace measures bytes
//! exactly, but only as post-hoc aggregates. This crate closes the
//! gap for a long-lived `sebmc serve` daemon with three layers:
//!
//! 1. [`metrics`] — a registry of atomic counters, gauges, and
//!    log₂-bucketed histograms with a lock-free hot path and a
//!    stable-keyed JSON snapshot (the `stats` protocol frame).
//! 2. [`trace`] — hierarchical span events (service → job → attempt →
//!    bound → solver episode) emitted as JSONL through a bounded byte
//!    ring to `--trace-out FILE`, so a quarantined job's full
//!    attempt/backoff/resume timeline is reconstructible offline.
//! 3. [`progress`] — the [`ProgressSink`] trait polled at the
//!    existing budget safe points inside the solver and engines,
//!    gated behind one `Option` branch exactly like the proof hooks.
//!
//! [`Telemetry`] ties the three together: it owns the registry and
//! the optional trace sink, and implements [`ProgressSink`] so a
//! `Arc<Telemetry>` can be handed straight down to the solver.
//!
//! The crate has **zero dependencies** — not even the in-tree JSON
//! crate — so it can sit below `crates/sat` in the dependency order
//! and keep the offline-build guard trivially satisfied. JSON output
//! is hand-formatted (every producing site controls its strings).

pub mod metrics;
pub mod progress;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, PRIORITY_LEVELS};
pub use progress::{Progress, ProgressHandle, ProgressSink};
pub use trace::{FieldValue, TraceSink};

use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The aggregate a running service carries: one metrics registry plus
/// an optional trace sink, behind one `Arc`.
#[derive(Debug)]
pub struct Telemetry {
    /// The metrics registry (always on; reading it is free).
    pub metrics: MetricsRegistry,
    trace: Option<TraceSink>,
    epoch: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Metrics only; tracing disabled.
    pub fn new() -> Self {
        Telemetry {
            metrics: MetricsRegistry::default(),
            trace: None,
            epoch: Instant::now(),
        }
    }

    /// Metrics plus JSONL tracing to a file created at `path`.
    pub fn with_trace_file(path: &Path) -> io::Result<Self> {
        Ok(Telemetry {
            metrics: MetricsRegistry::default(),
            trace: Some(TraceSink::to_file(path)?),
            epoch: Instant::now(),
        })
    }

    /// Metrics plus JSONL tracing to an arbitrary writer (tests).
    pub fn with_trace_writer(out: Box<dyn Write + Send>) -> Self {
        Telemetry {
            metrics: MetricsRegistry::default(),
            trace: Some(TraceSink::to_writer(out)),
            epoch: Instant::now(),
        }
    }

    /// Whether a trace sink is attached.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Emits a trace event if tracing is on (no-op otherwise).
    pub fn trace(&self, kind: &str, fields: &[(&str, FieldValue<'_>)]) {
        if let Some(sink) = &self.trace {
            sink.event(kind, fields);
        }
    }

    /// Drains and flushes the trace sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.trace {
            sink.flush();
        }
    }

    /// Time since this telemetry instance was created (the daemon's
    /// uptime when created at serve start).
    pub fn uptime(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// The registry snapshot wrapped with uptime:
    /// `{"uptime_ms":N,"metrics":{...}}`.
    pub fn snapshot_json(&self) -> String {
        format!(
            "{{\"uptime_ms\":{},\"metrics\":{}}}",
            self.uptime().as_millis(),
            self.metrics.snapshot_json()
        )
    }

    /// A [`ProgressHandle`] reporting into this instance.
    pub fn progress_handle(self: &Arc<Self>) -> ProgressHandle {
        ProgressHandle::new(Arc::clone(self) as Arc<dyn ProgressSink>)
    }
}

impl ProgressSink for Telemetry {
    fn progress(&self, p: &Progress) {
        self.metrics.solver_conflicts.add(p.conflicts);
        self.metrics.solver_propagations.add(p.propagations);
        self.metrics.solver_restarts.add(p.restarts);
        self.metrics.solver_trail_depth.set(p.trail_depth as u64);
        self.metrics.solver_learnts.set(p.learnts as u64);
        self.metrics.live_solver_bytes.set(p.live_bytes as u64);
        self.metrics.peak_solver_bytes.set_max(p.live_bytes as u64);
    }

    fn bound_start(&self, engine: &'static str, k: usize) {
        self.trace("bound", &[("engine", engine.into()), ("k", k.into())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn progress_samples_accumulate_into_the_registry() {
        let t = Arc::new(Telemetry::new());
        let h = t.progress_handle();
        h.report(&Progress {
            conflicts: 64,
            propagations: 1000,
            restarts: 1,
            trail_depth: 12,
            learnts: 5,
            live_bytes: 4096,
        });
        h.report(&Progress {
            conflicts: 64,
            propagations: 500,
            restarts: 0,
            trail_depth: 3,
            learnts: 9,
            live_bytes: 2048,
        });
        assert_eq!(t.metrics.solver_conflicts.get(), 128);
        assert_eq!(t.metrics.solver_propagations.get(), 1500);
        assert_eq!(t.metrics.solver_restarts.get(), 1);
        assert_eq!(t.metrics.solver_trail_depth.get(), 3, "last sample wins");
        assert_eq!(t.metrics.solver_learnts.get(), 9);
        assert_eq!(t.metrics.live_solver_bytes.get(), 2048);
        assert_eq!(t.metrics.peak_solver_bytes.get(), 4096, "peak ratchets");
    }

    #[test]
    fn bound_start_traces_when_tracing_is_on() {
        let buf = SharedBuf::default();
        let t = Arc::new(Telemetry::with_trace_writer(Box::new(buf.clone())));
        t.progress_handle().on_bound("jsat", 4);
        t.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"ev\":\"bound\""));
        assert!(text.contains("\"engine\":\"jsat\""));
        assert!(text.contains("\"k\":4"));
    }

    #[test]
    fn snapshot_wraps_metrics_with_uptime() {
        let t = Telemetry::new();
        let s = t.snapshot_json();
        assert!(s.starts_with("{\"uptime_ms\":"));
        assert!(s.contains("\"metrics\":{\"jobs_submitted\":0,"));
        assert!(!t.trace_enabled());
    }
}
