//! Structured JSONL span tracing through a bounded byte ring.
//!
//! Trace events are small JSON objects, one per line, each carrying a
//! monotone sequence number, a microsecond timestamp relative to the
//! sink's epoch, and an `"ev"` kind plus event-specific fields. The
//! hierarchy (service → job → attempt → bound → solver episode) is
//! *flat on the wire*: events reference their span through `job`,
//! `attempt`, and `k` fields, so a reader can reconstruct the full
//! timeline of one quarantined job by filtering on its id — no state
//! machine needed.
//!
//! Lines buffer in a bounded byte ring (the `ByteRing` shape from
//! `crates/proof`, replicated here so the crate keeps zero
//! dependencies) and drain to the writer only when the ring fills or
//! on an explicit [`TraceSink::flush`]: emitting an event costs a
//! short mutex hold and an in-memory copy, not a syscall. The ring
//! bounds the trace path's memory the same way the proof ring bounds
//! certification memory — in keeping with the paper's space-first
//! discipline, instrumentation must not grow with the workload.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity: enough for a few hundred events between
/// drains without ever holding more than 64 KiB of trace data.
const DEFAULT_RING_BYTES: usize = 64 << 10;

/// A fixed-capacity FIFO ring buffer of bytes (the `ByteRing` shape
/// from `crates/proof`, private replica).
#[derive(Debug)]
struct ByteRing {
    buf: Box<[u8]>,
    /// Index of the oldest unread byte.
    head: usize,
    /// Number of unread bytes.
    len: usize,
}

impl ByteRing {
    /// A ring holding at most `capacity` bytes (at least 1).
    fn new(capacity: usize) -> Self {
        ByteRing {
            buf: vec![0u8; capacity.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Free space in bytes.
    fn free(&self) -> usize {
        self.buf.len() - self.len
    }

    /// Appends as much of `bytes` as fits and returns how many bytes
    /// were accepted (0 when full).
    fn push(&mut self, bytes: &[u8]) -> usize {
        let n = bytes.len().min(self.free());
        let cap = self.buf.len();
        let mut tail = (self.head + self.len) % cap;
        for &b in &bytes[..n] {
            self.buf[tail] = b;
            tail = (tail + 1) % cap;
        }
        self.len += n;
        n
    }

    /// Moves up to `out.len()` of the oldest bytes into `out` and
    /// returns how many were read (0 when empty).
    fn read_into(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.len);
        let cap = self.buf.len();
        for slot in &mut out[..n] {
            *slot = self.buf[self.head];
            self.head = (self.head + 1) % cap;
        }
        self.len -= n;
        n
    }
}

/// One typed field value in a trace event.
#[derive(Debug, Clone, Copy)]
pub enum FieldValue<'a> {
    /// An unsigned integer field.
    U64(u64),
    /// A string field (JSON-escaped on emission).
    Str(&'a str),
}

impl From<u64> for FieldValue<'_> {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue<'_> {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue<'_> {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        FieldValue::Str(v)
    }
}

/// Everything behind the sink's mutex.
struct TraceInner {
    ring: ByteRing,
    out: Box<dyn Write + Send>,
    /// Next event sequence number.
    seq: u64,
    /// Bytes lost to writer errors (the trace degrades, the service
    /// does not).
    dropped: u64,
}

/// A thread-safe JSONL event sink with ring-buffered batching.
pub struct TraceSink {
    inner: Mutex<TraceInner>,
    epoch: Instant,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

impl TraceSink {
    /// A sink draining to an arbitrary writer (tests use an in-memory
    /// buffer).
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        TraceSink {
            inner: Mutex::new(TraceInner {
                ring: ByteRing::new(DEFAULT_RING_BYTES),
                out,
                seq: 0,
                dropped: 0,
            }),
            epoch: Instant::now(),
        }
    }

    /// A sink draining to a file created (truncated) at `path`.
    pub fn to_file(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Emits one event line: `{"seq":N,"t_us":T,"ev":"kind",...}`.
    ///
    /// Numeric fields render verbatim; string fields are JSON-escaped.
    /// The line lands in the ring; the writer is only touched when the
    /// ring cannot hold the line.
    pub fn event(&self, kind: &str, fields: &[(&str, FieldValue<'_>)]) {
        let t_us = self.epoch.elapsed().as_micros() as u64;
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        let mut line = String::with_capacity(96);
        let _ = write!(line, "{{\"seq\":{},\"t_us\":{t_us},\"ev\":", inner.seq);
        push_json_str(&mut line, kind);
        for (name, value) in fields {
            let _ = write!(line, ",\"{name}\":");
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                FieldValue::Str(s) => push_json_str(&mut line, s),
            }
        }
        line.push_str("}\n");
        inner.seq += 1;
        if inner.ring.free() < line.len() {
            Self::drain_ring(&mut inner);
        }
        if line.len() <= inner.ring.free() {
            inner.ring.push(line.as_bytes());
        } else if inner.out.write_all(line.as_bytes()).is_err() {
            // Line bigger than the whole (drained) ring: written
            // through directly; on writer failure the trace degrades,
            // the service does not.
            inner.dropped += line.len() as u64;
        }
    }

    /// Moves every buffered byte from the ring to the writer.
    fn drain_ring(inner: &mut TraceInner) {
        let mut chunk = [0u8; 1024];
        loop {
            let n = inner.ring.read_into(&mut chunk);
            if n == 0 {
                break;
            }
            if inner.out.write_all(&chunk[..n]).is_err() {
                inner.dropped += n as u64;
            }
        }
    }

    /// Drains the ring and flushes the writer (called on shutdown and
    /// before reading a trace file back).
    pub fn flush(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            Self::drain_ring(&mut inner);
            let _ = inner.out.flush();
        }
    }

    /// Events emitted so far.
    pub fn events(&self) -> u64 {
        self.inner.lock().map_or(0, |i| i.seq)
    }

    /// Bytes lost to writer errors so far.
    pub fn dropped_bytes(&self) -> u64 {
        self.inner.lock().map_or(0, |i| i.dropped)
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` handing bytes to a shared buffer (what the in-process
    /// scheduling tests use to read traces back).
    #[derive(Clone, Default)]
    pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        pub fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_render_as_jsonl_with_monotone_seq() {
        let buf = SharedBuf::default();
        let sink = TraceSink::to_writer(Box::new(buf.clone()));
        sink.event(
            "submit",
            &[("job", 3usize.into()), ("name", "ring_4".into())],
        );
        sink.event(
            "pop",
            &[("job", 3usize.into()), ("eff_priority", 4u64.into())],
        );
        sink.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"t_us\":"));
        assert!(lines[0].contains("\"ev\":\"submit\""));
        assert!(lines[0].contains("\"job\":3"));
        assert!(lines[0].contains("\"name\":\"ring_4\""));
        assert!(lines[1].starts_with("{\"seq\":1,"));
        assert!(lines[1].contains("\"eff_priority\":4"));
        assert_eq!(sink.events(), 2);
        assert_eq!(sink.dropped_bytes(), 0);
    }

    #[test]
    fn strings_are_json_escaped() {
        let buf = SharedBuf::default();
        let sink = TraceSink::to_writer(Box::new(buf.clone()));
        sink.event("note", &[("text", "a\"b\\c\nd".into())]);
        sink.flush();
        assert!(buf.contents().contains("\"text\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn ring_batches_writes_until_flush() {
        let buf = SharedBuf::default();
        let sink = TraceSink::to_writer(Box::new(buf.clone()));
        sink.event("tick", &[]);
        assert!(
            buf.contents().is_empty(),
            "one small event stays in the ring"
        );
        sink.flush();
        assert!(buf.contents().contains("\"ev\":\"tick\""));
    }

    #[test]
    fn many_events_survive_ring_pressure_without_loss() {
        let buf = SharedBuf::default();
        let sink = TraceSink::to_writer(Box::new(buf.clone()));
        for i in 0..5000u64 {
            sink.event("tick", &[("i", i.into())]);
        }
        sink.flush();
        let text = buf.contents();
        assert_eq!(text.lines().count(), 5000, "no event line lost");
        assert!(text.lines().last().unwrap().contains("\"i\":4999"));
    }
}
