//! Solver progress introspection: the sink trait and its handle.
//!
//! The solver and engines know nothing about metrics or tracing; they
//! only see a [`ProgressHandle`] threaded down through the budget
//! types. When no sink is installed (the default), every safe-point
//! poll is a single `Option` discriminant branch — the same contract
//! as the proof hooks: *observability that is not asked for is free*.

use std::fmt;
use std::sync::Arc;

/// A point-in-time sample from a running solver, taken at a budget
/// safe point. Counter fields are **deltas since the previous
/// sample** (so a sink can accumulate rates); level fields are
/// instantaneous.
#[derive(Clone, Copy, Debug, Default)]
pub struct Progress {
    /// Conflicts since the previous sample.
    pub conflicts: u64,
    /// Propagations since the previous sample.
    pub propagations: u64,
    /// Restarts since the previous sample.
    pub restarts: u64,
    /// Current assignment-trail depth.
    pub trail_depth: usize,
    /// Current learnt-clause count.
    pub learnts: usize,
    /// Current live bytes (arena + watches).
    pub live_bytes: usize,
}

/// Receives solver progress samples and engine bound transitions.
///
/// Implementations must be cheap and non-blocking: samples arrive
/// from the solver's inner loop (once per 64 conflicts).
pub trait ProgressSink: Send + Sync {
    /// A progress sample from a solver safe point.
    fn progress(&self, p: &Progress);

    /// An engine is starting work on bound `k`.
    fn bound_start(&self, engine: &'static str, k: usize) {
        let _ = (engine, k);
    }
}

/// An optional, shareable reference to a [`ProgressSink`].
///
/// The default (no sink) is what every existing call site gets via
/// `..Default::default()`; polling through it costs one branch.
#[derive(Clone, Default)]
pub struct ProgressHandle(Option<Arc<dyn ProgressSink>>);

impl ProgressHandle {
    /// A handle reporting to `sink`.
    pub fn new(sink: Arc<dyn ProgressSink>) -> Self {
        ProgressHandle(Some(sink))
    }

    /// The inert handle (all reporting disabled).
    pub fn none() -> Self {
        ProgressHandle(None)
    }

    /// Whether a sink is installed.
    pub fn installed(&self) -> bool {
        self.0.is_some()
    }

    /// Clones out the sink, if any — call sites that need to mutate
    /// `self` while reporting clone first to end the borrow.
    pub fn sink(&self) -> Option<Arc<dyn ProgressSink>> {
        self.0.clone()
    }

    /// Forwards a sample if a sink is installed (one branch if not).
    pub fn report(&self, p: &Progress) {
        if let Some(sink) = &self.0 {
            sink.progress(p);
        }
    }

    /// Forwards a bound transition if a sink is installed.
    pub fn on_bound(&self, engine: &'static str, k: usize) {
        if let Some(sink) = &self.0 {
            sink.bound_start(engine, k);
        }
    }
}

impl fmt::Debug for ProgressHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "ProgressHandle(installed)"
        } else {
            "ProgressHandle(none)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingSink {
        samples: AtomicU64,
        bounds: AtomicU64,
    }

    impl ProgressSink for CountingSink {
        fn progress(&self, _p: &Progress) {
            self.samples.fetch_add(1, Ordering::Relaxed);
        }
        fn bound_start(&self, _engine: &'static str, _k: usize) {
            self.bounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn default_handle_is_inert() {
        let h = ProgressHandle::default();
        assert!(!h.installed());
        h.report(&Progress::default());
        h.on_bound("jsat", 3);
        assert_eq!(format!("{h:?}"), "ProgressHandle(none)");
    }

    #[test]
    fn installed_handle_forwards() {
        let sink = Arc::new(CountingSink::default());
        let h = ProgressHandle::new(sink.clone());
        assert!(h.installed());
        h.report(&Progress::default());
        h.report(&Progress::default());
        h.on_bound("unroll", 1);
        assert_eq!(sink.samples.load(Ordering::Relaxed), 2);
        assert_eq!(sink.bounds.load(Ordering::Relaxed), 1);
        assert_eq!(format!("{h:?}"), "ProgressHandle(installed)");
    }
}
