//! Lock-free metric primitives and the service-wide registry.
//!
//! Every primitive is a thin wrapper over [`AtomicU64`] with
//! `Relaxed` ordering: the hot paths (solver polls, queue
//! transitions) pay one uncontended atomic RMW and nothing else, and
//! a snapshot is a plain load per metric — approximate across
//! threads, exact once the workload quiesces, which is all an
//! operator's dashboard or the post-drain `stats` frame needs.
//!
//! The registry is a *struct of named fields*, not a string-keyed
//! map: registration typos become compile errors, the hot path never
//! hashes a name, and the snapshot key set is frozen in one place
//! ([`MetricsRegistry::metric_names`]) so CI can diff it against the
//! checked-in `docs/metric-names.txt` contract.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level: can move both ways, or ratchet upward via
/// [`Gauge::set_max`] for peak-tracking.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero (a racing reader
    /// must never observe a wrapped-around level).
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Ratchets the level up to `v` if `v` is higher (peak tracking).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of base-2 exponential buckets: bucket 0 holds the value 0,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`, and the last
/// bucket absorbs everything from `2^62` up.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A base-2 exponential histogram with atomic buckets.
///
/// Recording costs three relaxed RMWs (bucket, count, sum); there is
/// no lock and no allocation. Bucket boundaries double, which keeps
/// 64 buckets enough for any `u64` sample while still resolving
/// millisecond latencies at the low end.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The bucket a sample lands in: 0 for 0, otherwise
    /// `1 + floor(log2 v)` capped at the last bucket.
    fn bucket_index(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// JSON view: `{"count":N,"sum":S,"buckets":[c0,c1,...]}` where
    /// `buckets` is truncated after the last non-empty bucket (an idle
    /// histogram renders as `[]`).
    pub fn to_json(&self) -> String {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let last = counts.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[",
            self.count(),
            self.sum()
        );
        for (i, c) in counts[..last].iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_string());
        }
        s.push_str("]}");
        s
    }
}

/// Priority levels a job can carry (0..=9), mirrored here so the
/// per-priority pop counters don't depend on the service crate.
pub const PRIORITY_LEVELS: usize = 10;

/// Every metric the checking stack exports, by name.
///
/// Names are a published contract (see `docs/observability.md` and
/// `docs/metric-names.txt`); renaming or removing a field is a
/// breaking change for dashboards and must update both docs.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Jobs accepted into the service (cache hits included).
    pub jobs_submitted: Counter,
    /// Jobs that produced a final report through a worker.
    pub jobs_completed: Counter,
    /// Jobs answered directly from the result cache (never queued).
    pub jobs_cached: Counter,
    /// Attempt retries across all jobs (attempts beyond the first).
    pub jobs_retried: Counter,
    /// Jobs shed under memory pressure.
    pub jobs_shed: Counter,
    /// Jobs quarantined after exhausting their retry budget.
    pub jobs_quarantined: Counter,
    /// Submissions refused (queue full, shutdown, malformed).
    pub jobs_rejected: Counter,
    /// Result-cache lookups that returned a finished report.
    pub cache_hits: Counter,
    /// Result-cache lookups that missed.
    pub cache_misses: Counter,
    /// Entries evicted from the result cache to make room.
    pub cache_evictions: Counter,
    /// Solver conflicts, accumulated from progress polls.
    pub solver_conflicts: Counter,
    /// Solver propagations, accumulated from progress polls.
    pub solver_propagations: Counter,
    /// Solver restarts, accumulated from progress polls.
    pub solver_restarts: Counter,
    /// Queue pops by *effective* (post-aging) priority level.
    pub queue_pops: [Counter; PRIORITY_LEVELS],
    /// Jobs currently waiting in the pending queue.
    pub queue_depth: Gauge,
    /// Highest pending-queue depth observed.
    pub queue_depth_high_water: Gauge,
    /// Jobs currently running on workers.
    pub jobs_in_flight: Gauge,
    /// Solver live bytes (arena + watches) at the last progress poll.
    pub live_solver_bytes: Gauge,
    /// Highest solver live bytes seen at any progress poll.
    pub peak_solver_bytes: Gauge,
    /// Highest per-job peak arena bytes reported by a finished job.
    pub peak_arena_bytes: Gauge,
    /// Highest per-job peak watch bytes reported by a finished job.
    pub peak_watch_bytes: Gauge,
    /// Highest per-job peak proof-ring bytes reported by a finished
    /// job.
    pub peak_proof_bytes: Gauge,
    /// Solver trail depth at the last progress poll.
    pub solver_trail_depth: Gauge,
    /// Learnt-clause count at the last progress poll.
    pub solver_learnts: Gauge,
    /// Queue wait (submission to worker pickup), milliseconds.
    pub queue_wait_ms: Histogram,
    /// Worker solve latency (pickup to report), milliseconds.
    pub solve_latency_ms: Histogram,
}

impl MetricsRegistry {
    /// Every snapshot key, in snapshot order. This list *is* the
    /// stability contract checked against `docs/metric-names.txt`.
    pub fn metric_names() -> &'static [&'static str] {
        &[
            "jobs_submitted",
            "jobs_completed",
            "jobs_cached",
            "jobs_retried",
            "jobs_shed",
            "jobs_quarantined",
            "jobs_rejected",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "solver_conflicts",
            "solver_propagations",
            "solver_restarts",
            "queue_pops",
            "queue_depth",
            "queue_depth_high_water",
            "jobs_in_flight",
            "live_solver_bytes",
            "peak_solver_bytes",
            "peak_arena_bytes",
            "peak_watch_bytes",
            "peak_proof_bytes",
            "solver_trail_depth",
            "solver_learnts",
            "queue_wait_ms",
            "solve_latency_ms",
        ]
    }

    /// One-object JSON snapshot with exactly the keys of
    /// [`MetricsRegistry::metric_names`], in that order.
    pub fn snapshot_json(&self) -> String {
        let pops = self
            .queue_pops
            .iter()
            .map(|c| c.get().to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"jobs_submitted\":{},\"jobs_completed\":{},\"jobs_cached\":{},\
             \"jobs_retried\":{},\"jobs_shed\":{},\"jobs_quarantined\":{},\
             \"jobs_rejected\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"cache_evictions\":{},\"solver_conflicts\":{},\
             \"solver_propagations\":{},\"solver_restarts\":{},\
             \"queue_pops\":[{}],\"queue_depth\":{},\
             \"queue_depth_high_water\":{},\"jobs_in_flight\":{},\
             \"live_solver_bytes\":{},\"peak_solver_bytes\":{},\
             \"peak_arena_bytes\":{},\"peak_watch_bytes\":{},\
             \"peak_proof_bytes\":{},\"solver_trail_depth\":{},\
             \"solver_learnts\":{},\"queue_wait_ms\":{},\"solve_latency_ms\":{}}}",
            self.jobs_submitted.get(),
            self.jobs_completed.get(),
            self.jobs_cached.get(),
            self.jobs_retried.get(),
            self.jobs_shed.get(),
            self.jobs_quarantined.get(),
            self.jobs_rejected.get(),
            self.cache_hits.get(),
            self.cache_misses.get(),
            self.cache_evictions.get(),
            self.solver_conflicts.get(),
            self.solver_propagations.get(),
            self.solver_restarts.get(),
            pops,
            self.queue_depth.get(),
            self.queue_depth_high_water.get(),
            self.jobs_in_flight.get(),
            self.live_solver_bytes.get(),
            self.peak_solver_bytes.get(),
            self.peak_arena_bytes.get(),
            self.peak_watch_bytes.get(),
            self.peak_proof_bytes.get(),
            self.solver_trail_depth.get(),
            self.solver_learnts.get(),
            self.queue_wait_ms.to_json(),
            self.solve_latency_ms.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        g.add(3);
        g.sub(4);
        assert_eq!(g.get(), 6);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge saturates at zero");
        g.set_max(9);
        g.set_max(2);
        assert_eq!(g.get(), 9, "set_max only ratchets upward");
    }

    #[test]
    fn histogram_buckets_double() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1011);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 1000 → 10.
        let json = h.to_json();
        assert_eq!(
            json,
            "{\"count\":7,\"sum\":1011,\"buckets\":[1,2,2,1,0,0,0,0,0,0,1]}"
        );
    }

    #[test]
    fn histogram_handles_huge_samples() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_keys_match_the_published_contract() {
        let names = MetricsRegistry::metric_names();
        let snapshot = MetricsRegistry::default().snapshot_json();
        let mut at = 0;
        for name in names {
            let needle = format!("\"{name}\":");
            let pos = snapshot[at..]
                .find(&needle)
                .unwrap_or_else(|| panic!("snapshot is missing {name} (after byte {at})"));
            at += pos + needle.len();
        }
        // No extra keys: every `"..":` in the snapshot that looks like
        // a top-level key is accounted for (histograms contribute
        // nested count/sum/buckets keys, which the contract excludes).
        let nested = ["count", "sum", "buckets"];
        let mut keys = Vec::new();
        let mut depth = 0usize;
        let bytes = snapshot.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                b'"' if depth == 1 => {
                    let end = snapshot[i + 1..].find('"').map(|e| i + 1 + e).unwrap();
                    keys.push(&snapshot[i + 1..end]);
                    i = end;
                }
                _ => {}
            }
            i += 1;
        }
        let keys: Vec<&str> = keys.into_iter().filter(|k| !nested.contains(k)).collect();
        assert_eq!(keys, names, "snapshot keys drifted from metric_names()");
    }

    /// The checked-in `docs/metric-names.txt` is the cross-repo
    /// stability contract: dashboards key on these names, so any
    /// rename must be deliberate (edit the file in the same change).
    #[test]
    fn metric_names_match_checked_in_contract() {
        let contract: Vec<&str> = include_str!("../../../docs/metric-names.txt")
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        assert_eq!(
            contract,
            MetricsRegistry::metric_names(),
            "docs/metric-names.txt and MetricsRegistry::metric_names() disagree"
        );
    }
}
