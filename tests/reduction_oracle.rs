//! Reduction-vs-oracle property suite (ISSUE 8).
//!
//! The static model reduction (cone-of-influence, constant-latch
//! sweeping, unused-input elimination) runs by default inside every
//! `Engine::start`; these tests pin its soundness contract against the
//! *unreduced* engine as oracle:
//!
//! * on the whole small benchmark suite, all four engines under both
//!   semantics produce the same verdict with reduction on and off,
//!   and every reduced-run witness lifts to a trace the **original**
//!   model replays;
//! * the same property holds on seeded random models built to contain
//!   reduction fodder (observer latches, constant latches, dead
//!   inputs) around a live core;
//! * on reducible suite models the reduction is not a no-op: the
//!   reduced run's `peak_formula_bytes` is strictly below the
//!   unreduced run's at equal verdicts (the paper's whole metric).

use sebmc_repro::bmc::{
    BmcResult, Budget, Engine, JSat, QbfBackend, QbfLinear, QbfSquaring, Semantics, UnrollSat,
};
use sebmc_repro::logic::rng::SplitMix64;
use sebmc_repro::logic::AigRef;
use sebmc_repro::model::{builders, suite13_small, Model, ModelBuilder};
use std::time::Duration;

/// Each engine with its per-session wall clock. The SAT engines run
/// unlimited (they are fast on these models); the general-purpose QBF
/// engines are *sound but weak* and get the same short leash the
/// `engine_agreement` suite gives them — `agrees_with` is lenient on
/// `Unknown`, so a timeout never fakes agreement, it only skips the
/// bound.
fn engines() -> Vec<(&'static str, Box<dyn Engine>, Option<Duration>)> {
    let leash = Some(Duration::from_millis(300));
    vec![
        (
            "unroll",
            Box::new(UnrollSat::default()) as Box<dyn Engine>,
            None,
        ),
        ("jsat", Box::new(JSat::default()), None),
        (
            "qbf-linear",
            Box::new(QbfLinear::new(QbfBackend::Qdpll)),
            leash,
        ),
        (
            "qbf-squaring",
            Box::new(QbfSquaring::new(QbfBackend::Expansion)),
            leash,
        ),
    ]
}

fn budget(reduce: bool, timeout: Option<Duration>) -> Budget {
    Budget {
        reduce,
        timeout,
        ..Budget::default()
    }
}

/// Checks bounds `0..=max_bound` of `model` on every engine under both
/// semantics, reduced against unreduced, asserting verdict agreement
/// and original-model witness replay. `label` names the model in
/// failure messages (random cases print their case number).
fn assert_reduction_agrees(model: &Model, max_bound: usize, label: &str) {
    for semantics in [Semantics::Exactly, Semantics::Within] {
        for (name, engine, timeout) in engines() {
            let mut reduced = engine.start(model, semantics, budget(true, timeout));
            let mut oracle = engine.start(model, semantics, budget(false, timeout));
            for k in 0..=max_bound {
                let r = reduced.check_bound(k);
                let o = oracle.check_bound(k);
                // QBF backends may give up on bounds they cannot
                // encode; reduction must not change *where*.
                assert!(
                    r.result.agrees_with(&o.result),
                    "{label}: {name} ({semantics}) diverges at k={k}: \
                     {:?} (reduced) vs {:?} (oracle)",
                    r.result,
                    o.result
                );
                if let BmcResult::Reachable(Some(trace)) = &r.result {
                    assert_eq!(
                        trace.states.first().map(Vec::len),
                        Some(model.num_state_vars()),
                        "{label}: {name} k={k}: witness not lifted to original width"
                    );
                    assert_eq!(
                        model.check_trace(trace),
                        Ok(()),
                        "{label}: {name} ({semantics}) k={k}: lifted witness rejected \
                         by the original model"
                    );
                }
            }
        }
    }
}

#[test]
fn suite_verdicts_and_witnesses_agree_with_the_unreduced_oracle() {
    for model in suite13_small() {
        assert_reduction_agrees(&model, 4, model.name());
    }
}

/// A random model with reduction fodder: a live random core (as in the
/// `random_models` suite) plus observer latches that read the core but
/// are never read back, a constant latch, and a dead input — exactly
/// the structures the analysis sweeps and removes.
fn random_reducible_model(rng: &mut SplitMix64) -> Model {
    let core_bits = rng.range_inclusive(2, 3);
    let obs_bits = rng.range_inclusive(1, 2);
    let bits = core_bits + obs_bits + 1; // + one constant latch
    let inputs = rng.range_inclusive(1, 2) + 1; // + one dead input
    let mut b = ModelBuilder::new("random-reducible");
    let state = b.state_vars(bits, "s");
    let ins = b.inputs(inputs, "i");
    // The gate cloud only draws from the live core and the live
    // inputs, so the observers/constant stay out of every cone.
    let mut pool: Vec<AigRef> = state[..core_bits]
        .iter()
        .chain(ins[..inputs - 1].iter())
        .copied()
        .collect();
    for _ in 0..rng.range_inclusive(1, 6) {
        let x = pool[rng.below(pool.len())];
        let y = pool[rng.below(pool.len())];
        let x = if rng.coin() { !x } else { x };
        let y = if rng.coin() { !y } else { y };
        let g = match rng.below(3) {
            0 => b.aig_mut().and(x, y),
            1 => b.aig_mut().or(x, y),
            _ => b.aig_mut().xor(x, y),
        };
        pool.push(g);
    }
    let mut nexts: Vec<AigRef> = Vec::with_capacity(bits);
    for _ in 0..core_bits {
        let g = pool[rng.below(pool.len())];
        nexts.push(if rng.coin() { !g } else { g });
    }
    // Observers: read the core (or another observer), never read back.
    for i in 0..obs_bits {
        let src = if i == 0 {
            pool[rng.below(pool.len())]
        } else {
            state[core_bits + i - 1]
        };
        let own = state[core_bits + i];
        nexts.push(b.aig_mut().or(src, own));
    }
    // Constant latch: zero-initialised, feeds back its own AND with a
    // random (so possibly non-constant) signal — folds to FALSE.
    let cl = state[core_bits + obs_bits];
    let noise = pool[rng.below(pool.len())];
    nexts.push(b.aig_mut().and(cl, noise));
    b.set_next_all(&nexts);
    // All-zero init forces the constant latch (and everything else).
    let init = b.aig_mut().eq_const(&state, 0);
    b.set_init(init);
    // Target over the live core only.
    let mut target = AigRef::TRUE;
    for s in state.iter().take(core_bits) {
        if rng.coin() {
            let lit = if rng.coin() { !*s } else { *s };
            target = b.aig_mut().and(target, lit);
        }
    }
    if target == AigRef::TRUE {
        target = if rng.coin() { !state[0] } else { state[0] };
    }
    b.set_target(target);
    b.build().expect("random reducible model is well-formed")
}

#[test]
fn random_reducible_models_agree_with_the_unreduced_oracle() {
    for case in 0..25u64 {
        let mut rng = SplitMix64::new(0x5eed_0009 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let model = random_reducible_model(&mut rng);
        assert_reduction_agrees(&model, 3, &format!("case {case}"));
    }
}

/// Acceptance: on reducible suite models the reduced run's peak
/// clause-database bytes are *strictly* below the unreduced run's, at
/// identical verdicts. (`round_robin_arbiter(8)` drops 7 grant
/// latches and 7 request inputs; `fifo(3)` drops its unread head
/// pointer.)
#[test]
fn reduction_strictly_shrinks_peak_formula_bytes_on_reducible_suite_models() {
    for (model, max_bound) in [
        (builders::round_robin_arbiter(8), 8),
        (builders::fifo(3), 6),
    ] {
        let mut reduced = UnrollSat::default().start(&model, Semantics::Within, budget(true, None));
        let mut oracle = UnrollSat::default().start(&model, Semantics::Within, budget(false, None));
        let mut r_peak = 0usize;
        let mut o_peak = 0usize;
        for k in 0..=max_bound {
            let r = reduced.check_bound(k);
            let o = oracle.check_bound(k);
            assert!(
                r.result.agrees_with(&o.result),
                "{} k={k}: {:?} vs {:?}",
                model.name(),
                r.result,
                o.result
            );
            r_peak = r_peak.max(r.stats.peak_formula_bytes);
            o_peak = o_peak.max(o.stats.peak_formula_bytes);
            assert!(r.stats.latches_swept > 0 || r.stats.coi_latches > 0);
            if r.result.is_reachable() {
                break;
            }
        }
        assert!(
            r_peak < o_peak,
            "{}: reduction did not shrink the formula ({r_peak} vs {o_peak} bytes)",
            model.name()
        );
    }
}
