//! End-to-end tests of the `sebmc` CLI binary: AIGER in, HWMCC-style
//! verdict and stimulus witness out.

use std::io::Write;
use std::process::Command;

use sebmc_repro::aiger;
use sebmc_repro::model::builders::{shift_register, traffic_light};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sebmc-cli"))
}

fn write_temp_aag(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("sebmc-test-{name}-{}.aag", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

#[test]
fn reachable_circuit_yields_witness() {
    let model = shift_register(3);
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("shift", &aiger::to_ascii_string(&file));
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "jsat",
            "--bound",
            "3",
            "--quiet",
        ])
        .output()
        .expect("run sebmc");
    assert_eq!(out.status.code(), Some(10), "reachable exit code");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "1");
    assert_eq!(lines[1], "b0");
    assert_eq!(lines[2], "000", "initial latch values");
    // Three input steps of one bit each, then the terminator.
    assert_eq!(lines.len(), 3 + 3 + 1);
    assert_eq!(*lines.last().unwrap(), ".");
    for step in &lines[3..6] {
        assert_eq!(*step, "1", "shifting in ones is the only witness");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn unreachable_circuit_yields_zero() {
    let model = traffic_light();
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("traffic", &aiger::to_ascii_string(&file));
    for engine in ["jsat", "unroll"] {
        let out = cli()
            .args([
                path.to_str().unwrap(),
                "--engine",
                engine,
                "--bound",
                "6",
                "--quiet",
            ])
            .output()
            .expect("run sebmc");
        assert_eq!(out.status.code(), Some(20), "{engine} safe exit code");
        assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "0");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn k_induction_proves_safety() {
    let model = traffic_light();
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("traffic-kind", &aiger::to_ascii_string(&file));
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "k-induction",
            "--bound",
            "8",
        ])
        .output()
        .expect("run sebmc");
    assert_eq!(out.status.code(), Some(20));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("proved safe"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn budgeted_qbf_reports_unknown() {
    let model = shift_register(8);
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("shift-qbf", &aiger::to_ascii_string(&file));
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "qbf-linear",
            "--bound",
            "8",
            "--timeout-ms",
            "50",
            "--quiet",
        ])
        .output()
        .expect("run sebmc");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "2");
    std::fs::remove_file(path).ok();
}

#[test]
fn malformed_input_is_rejected_cleanly() {
    let path = write_temp_aag("garbage", "not an aiger file\n");
    let out = cli().arg(path.to_str().unwrap()).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("aiger"));
    std::fs::remove_file(path).ok();

    let out = cli().arg("/nonexistent/file.aag").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn malformed_numeric_flags_exit_2() {
    let model = shift_register(3);
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("badnum", &aiger::to_ascii_string(&file));
    for (flag, value) in [
        ("--timeout-ms", "abc"),
        ("--mem-mb", "abc"),
        ("--bound", "-3"),
        ("--timeout-ms", "1.5"),
    ] {
        let out = cli()
            .args([path.to_str().unwrap(), flag, value])
            .output()
            .expect("run");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} {value} must be a usage error, not silently unlimited"
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains(flag.trim_start_matches("--")), "{stderr}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn json_output_is_one_object_with_stats() {
    let model = shift_register(3);
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("json", &aiger::to_ascii_string(&file));
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "unroll",
            "--bound",
            "3",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(10));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout.trim();
    assert_eq!(stdout.trim_matches('\n').lines().count(), 1, "one object");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    for key in [
        "\"verdict\":\"reachable\"",
        "\"bound\":3",
        "\"engine\":\"unroll\"",
        "\"peak_formula_bytes\":",
        "\"peak_watch_bytes\":",
        "\"solver_effort\":",
        "\"bounds_checked\":",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn deepen_finds_minimal_bound() {
    let model = shift_register(4);
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("deepen", &aiger::to_ascii_string(&file));
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "unroll",
            "--bound",
            "10",
            "--deepen",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(10), "reachable exit code");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("first reachable at bound 4"),
        "deepening reports the minimal bound: {stderr}"
    );
    // The witness has exactly 4 input steps.
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "1");
    assert_eq!(lines.len(), 3 + 4 + 1);

    // Deepen + JSON: cumulative stats count all bounds 0..=4.
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "unroll",
            "--bound",
            "10",
            "--deepen",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(10));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"bound\":4"), "{stdout}");
    assert!(stdout.contains("\"bounds_checked\":5"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn deepen_unreachable_reports_exhaustion() {
    let model = traffic_light();
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("deepen-unsat", &aiger::to_ascii_string(&file));
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "jsat",
            "--bound",
            "5",
            "--deepen",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(20), "safe exit code");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"verdict\":\"unreachable\""), "{stdout}");
    assert!(stdout.contains("\"bounds_checked\":6"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn within_semantics_flag() {
    // lfsr needle at exactly 6: within-8 reachable, exactly-8 not.
    let model = sebmc_repro::model::builders::lfsr(4, 6);
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("lfsr", &aiger::to_ascii_string(&file));
    let exact = cli()
        .args([path.to_str().unwrap(), "--bound", "8", "--quiet"])
        .output()
        .expect("run");
    assert_eq!(exact.status.code(), Some(20), "exactly-8 unreachable");
    let within = cli()
        .args([
            path.to_str().unwrap(),
            "--bound",
            "8",
            "--within",
            "--quiet",
        ])
        .output()
        .expect("run");
    assert_eq!(within.status.code(), Some(10), "within-8 reachable");
    std::fs::remove_file(path).ok();
}

#[test]
fn batch_suite_produces_a_service_report() {
    let out = cli()
        .args([
            "batch",
            "--suite",
            "small",
            "--workers",
            "4",
            "--bound",
            "4",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run sebmc batch");
    assert_eq!(out.status.code(), Some(0), "no unknown jobs expected");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"jobs_total\":13"), "{stdout}");
    assert!(stdout.contains("\"workers\":4"), "{stdout}");
    assert!(stdout.contains("\"verdict\":\"reachable\""), "{stdout}");
    assert!(stdout.contains("\"winners\":["), "{stdout}");
    // The aggregate splits wall clock into queue wait and solve time.
    assert!(stdout.contains("\"queue_wait_ms_total\":"), "{stdout}");
    assert!(stdout.contains("\"solve_ms_total\":"), "{stdout}");
}

#[test]
fn batch_job_file_runs_portfolio_and_single_engine_jobs() {
    let path = std::env::temp_dir().join(format!("sebmc-test-jobs-{}.txt", std::process::id()));
    std::fs::write(
        &path,
        "# two jobs: a per-bound portfolio race and a single session\n\
         suite:ring_4 jsat,unroll 6\n\
         suite:traffic unroll 3 name=tl\n",
    )
    .expect("write job file");
    // The file is a positional arg of the batch subcommand.
    let out = cli()
        .args([
            "batch",
            path.to_str().unwrap(),
            "--workers",
            "2",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run sebmc batch");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"jobs_total\":2"), "{stdout}");
    assert!(stdout.contains("\"name\":\"tl\""), "{stdout}");
    assert!(stdout.contains("\"bound\":3"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn batch_rejects_malformed_input() {
    // Unknown engine list is a usage error (exit 2), not a silent run.
    let bad_engines = cli()
        .args(["batch", "--engines", "bdd", "--quiet"])
        .output()
        .expect("run");
    assert_eq!(bad_engines.status.code(), Some(2));
    // Malformed job file lines are reported with their line number.
    let path = std::env::temp_dir().join(format!("sebmc-test-badjobs-{}.txt", std::process::id()));
    std::fs::write(&path, "suite:ring_4 jsat\n").expect("write");
    let bad_file = cli()
        .args(["batch", path.to_str().unwrap(), "--quiet"])
        .output()
        .expect("run");
    assert_eq!(bad_file.status.code(), Some(2));
    let stderr = String::from_utf8(bad_file.stderr).unwrap();
    assert!(stderr.contains("line 1"), "{stderr}");
    // Suite-only flags combined with a job file are rejected, not
    // silently ignored (the file's own engines/bounds would win).
    std::fs::write(&path, "suite:ring_4 jsat 4\n").expect("write");
    for conflicting in [
        ["--engines", "jsat"],
        ["--bound", "9"],
        ["--suite", "small"],
    ] {
        let out = cli()
            .args(["batch", path.to_str().unwrap(), "--quiet"])
            .args(conflicting)
            .output()
            .expect("run");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{conflicting:?} with a job file must be a usage error"
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("cannot be combined"), "{stderr}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn certify_flag_attaches_a_certificate_to_json() {
    let model = traffic_light();
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("certify", &aiger::to_ascii_string(&file));
    // An Unsat deepening sweep: every bound must be machine-checked.
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "unroll",
            "--bound",
            "4",
            "--deepen",
            "--certify",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(20), "unreachable exit code");
    let line = String::from_utf8(out.stdout).unwrap().trim().to_string();
    assert!(
        line.contains("\"certificate\":{\"certified\":true"),
        "{line}"
    );
    assert!(line.contains("\"bounds_attempted\":5"), "{line}");
    assert!(line.contains("\"bounds_certified\":5"), "{line}");
    assert!(line.contains("\"failed_checks\":0"), "{line}");
    assert!(line.contains("\"peak_proof_bytes\":"), "{line}");
    assert!(
        !line.contains("\"peak_proof_bytes\":0,"),
        "exact proof size"
    );
    // Without --certify the field is null and no proof bytes accrue.
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "unroll",
            "--bound",
            "4",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run");
    let line = String::from_utf8(out.stdout).unwrap().trim().to_string();
    assert!(line.contains("\"certificate\":null"), "{line}");
    assert!(line.contains("\"peak_proof_bytes\":0"), "{line}");
    std::fs::remove_file(path).ok();
}

#[test]
fn batch_certify_certifies_every_job() {
    let out = cli()
        .args([
            "batch",
            "--suite",
            "small",
            "--bound",
            "3",
            "--certify",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run sebmc batch");
    assert_eq!(out.status.code(), Some(0), "all certified, exit 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"jobs_certified\":13"), "{stdout}");
    assert!(
        stdout.contains("\"certificate\":{\"certified\":true"),
        "{stdout}"
    );
    assert!(stdout.contains("\"unsat_proofs\":"), "{stdout}");
}

#[test]
fn proof_out_single_mode_keeps_drat_only_for_unreachable() {
    let model = traffic_light();
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("proof-unsat", &aiger::to_ascii_string(&file));
    let proof = std::env::temp_dir().join(format!("sebmc-test-proof-{}.drat", std::process::id()));
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "unroll",
            "--bound",
            "4",
            "--deepen",
            "--proof-out",
            proof.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(20), "unreachable exit code");
    let bytes = std::fs::read(&proof).expect("proof file written");
    assert!(!bytes.is_empty(), "DRAT stream has content");
    std::fs::remove_file(&proof).ok();
    std::fs::remove_file(path).ok();

    // A reachable verdict removes the partial stream.
    let model = shift_register(3);
    let file = aiger::model_to_aiger(&model).expect("export");
    let path = write_temp_aag("proof-sat", &aiger::to_ascii_string(&file));
    let out = cli()
        .args([
            path.to_str().unwrap(),
            "--engine",
            "unroll",
            "--bound",
            "3",
            "--proof-out",
            proof.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(10));
    assert!(!proof.exists(), "no partial proof left for a SAT verdict");
    std::fs::remove_file(path).ok();
}

#[test]
fn batch_proof_out_exports_drat_per_unsat_job() {
    let dir = std::env::temp_dir().join(format!("sebmc-test-proofdir-{}", std::process::id()));
    let out = cli()
        .args([
            "batch",
            "--suite",
            "small",
            "--engines",
            "unroll",
            "--bound",
            "3",
            "--proof-out",
            dir.to_str().unwrap(),
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run sebmc batch");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"proof_path\":\""), "{stdout}");
    // Exactly the unreachable jobs left .drat files behind.
    let unreachable = stdout.matches("\"verdict\":\"unreachable\"").count();
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("proof dir created")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(files.len(), unreachable, "{files:?}");
    for f in &files {
        assert_eq!(f.extension().and_then(|e| e.to_str()), Some("drat"));
        assert!(!std::fs::read(f).unwrap().is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_fault_plan_with_retries_recovers_and_reports() {
    // Every job panics at its 2nd engine safe-point hit; with retries
    // the batch still converges to the same verdicts, and the report
    // shows the retried attempts.
    let out = cli()
        .args([
            "batch",
            "--suite",
            "small",
            "--engines",
            "unroll",
            "--bound",
            "3",
            "--retries",
            "2",
            "--backoff-ms",
            "1",
            "--fault-plan",
            "panic@engine:2",
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run sebmc batch");
    assert_eq!(out.status.code(), Some(0), "all jobs recovered");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"jobs_total\":13"), "{stdout}");
    assert!(stdout.contains("\"jobs_retried\":13"), "{stdout}");
    assert!(stdout.contains("\"jobs_quarantined\":0"), "{stdout}");
    assert!(stdout.contains("injected fault"), "{stdout}");

    // A malformed plan is a usage error, not a silent no-op.
    let bad = cli()
        .args(["batch", "--fault-plan", "explode@engine:1", "--quiet"])
        .output()
        .expect("run");
    assert_eq!(bad.status.code(), Some(2));
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.contains("fault-plan"), "{stderr}");
}

#[test]
fn batch_witness_dir_streams_traces_to_files() {
    let dir = std::env::temp_dir().join(format!("sebmc-test-witdir-{}", std::process::id()));
    let out = cli()
        .args([
            "batch",
            "--suite",
            "small",
            "--engines",
            "unroll",
            "--bound",
            "4",
            "--witness-dir",
            dir.to_str().unwrap(),
            "--json",
            "--quiet",
        ])
        .output()
        .expect("run sebmc batch");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"witness_path\":\""), "{stdout}");
    assert!(stdout.contains("\"witness_steps\":"), "{stdout}");
    // Every reachable job produced one HWMCC witness file.
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("witness dir created")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!files.is_empty(), "witness files written");
    for f in &files {
        let content = std::fs::read_to_string(f).unwrap();
        assert!(content.starts_with("1\nb0\n"), "{content}");
        assert!(content.ends_with(".\n"), "{content}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
