//! Integration tests of the session API: cooperative cancellation,
//! session-vs-one-shot agreement, and the solver-state reuse that the
//! deepening loop buys.

use std::time::{Duration, Instant};

use sebmc_repro::bmc::{
    find_shortest_witness, Budget, DeepeningResult, Engine, JSat, QbfBackend, QbfLinear,
    QbfSquaring, Semantics, UnrollSat,
};
use sebmc_repro::model::builders::{counter_with_enable, shift_register, token_ring};
use sebmc_repro::model::{explicit, suite13_small};

/// Every engine must notice a token that fired *before* the check even
/// started, without doing any real work.
#[test]
fn pre_fired_token_returns_unknown_immediately() {
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(UnrollSat::default()),
        Box::new(JSat::default()),
        Box::new(QbfLinear::new(QbfBackend::Qdpll)),
        Box::new(QbfSquaring::new(QbfBackend::Expansion)),
    ];
    let model = shift_register(6);
    for engine in &engines {
        let budget = Budget::none();
        budget.cancel.cancel();
        let start = Instant::now();
        let mut session = engine.start(&model, Semantics::Exactly, budget);
        let out = session.check_bound(4);
        assert!(
            out.result.is_unknown(),
            "{}: expected Unknown, got {}",
            Engine::name(engine.as_ref()),
            out.result
        );
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "{}: pre-fired token must not cost real work",
            Engine::name(engine.as_ref())
        );
    }
}

/// Fires the token 100 ms into a hard check and asserts the engine
/// backs out promptly with `Unknown("cancelled")`.
fn assert_cancels_mid_run(engine: &dyn Engine, model: &sebmc_repro::model::Model, k: usize) {
    // Generous fallback deadline so a broken cancellation path still
    // terminates the test (and fails the elapsed assertion).
    let budget = Budget::with_timeout(Duration::from_secs(120));
    let token = budget.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        token.cancel();
    });
    let start = Instant::now();
    let mut session = engine.start(model, Semantics::Exactly, budget);
    let out = session.check_bound(k);
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    assert_eq!(
        out.result,
        sebmc_repro::bmc::BmcResult::Unknown("cancelled".into()),
        "{} did not report cancellation (after {elapsed:?})",
        Engine::name(engine)
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "{} took {elapsed:?} to notice the token",
        Engine::name(engine)
    );
}

#[test]
fn unroll_cancels_mid_run() {
    // Exactly-100 on a 14-bit enable-counter: UNSAT but far beyond the
    // CDCL solver's quick reach.
    assert_cancels_mid_run(&UnrollSat::default(), &counter_with_enable(14), 100);
}

#[test]
fn jsat_cancels_mid_run() {
    // The DFS has ~2^40 enable paths to refute at bound 40.
    assert_cancels_mid_run(&JSat::default(), &counter_with_enable(12), 40);
}

#[test]
fn qbf_linear_cancels_mid_run() {
    // QDPLL needs far longer than the cancellation window here (the
    // CLI test relies on the same instance blowing a 50 ms budget).
    assert_cancels_mid_run(&QbfLinear::new(QbfBackend::Qdpll), &shift_register(8), 8);
}

#[test]
fn qbf_squaring_cancels_mid_run() {
    // Squaring at bound 4 carries 2 quantifier alternations; QDPLL
    // search over them is hopeless within the window.
    assert_cancels_mid_run(&QbfSquaring::new(QbfBackend::Qdpll), &shift_register(6), 4);
}

/// `find_shortest_witness` over a session must observe cancellation
/// between bounds too.
#[test]
fn deepening_observes_cancellation() {
    let budget = Budget::none();
    budget.cancel.cancel();
    let r = find_shortest_witness(
        &UnrollSat::default(),
        &counter_with_enable(8),
        1_000,
        budget,
    );
    match r {
        DeepeningResult::GaveUpAt { reason, .. } => assert_eq!(reason, "cancelled"),
        other => panic!("expected GaveUpAt, got {other:?}"),
    }
}

/// Session sweeps must give exactly the verdicts of fresh one-shot
/// checks on every model of the small suite, under both semantics —
/// persistent solver state (learnt clauses, caches, retired guards)
/// must never leak into a verdict.
#[test]
fn session_verdicts_match_oneshot_across_suite() {
    let engines: Vec<Box<dyn Engine>> =
        vec![Box::new(UnrollSat::default()), Box::new(JSat::default())];
    for engine in &engines {
        for semantics in [Semantics::Exactly, Semantics::Within] {
            for model in suite13_small() {
                let mut session = engine.start(&model, semantics, Budget::none());
                for k in 0..=5 {
                    let sess = session.check_bound(k);
                    let oneshot = engine
                        .start(&model, semantics, Budget::none())
                        .check_bound(k);
                    assert!(
                        !sess.result.is_unknown() && !oneshot.result.is_unknown(),
                        "{} gave up on {} at {k}",
                        Engine::name(engine.as_ref()),
                        model.name()
                    );
                    assert_eq!(
                        sess.result.is_reachable(),
                        oneshot.result.is_reachable(),
                        "{} session/one-shot disagree on {} at bound {k} ({semantics})",
                        Engine::name(engine.as_ref()),
                        model.name()
                    );
                    let expect = match semantics {
                        Semantics::Exactly => explicit::reachable_in_exactly(&model, k),
                        Semantics::Within => explicit::reachable_within(&model, k),
                    };
                    assert_eq!(
                        sess.result.is_reachable(),
                        expect,
                        "{} session disagrees with oracle on {} at bound {k} ({semantics})",
                        Engine::name(engine.as_ref()),
                        model.name()
                    );
                    if let Some(t) = sess.result.witness() {
                        assert_eq!(model.check_trace(t), Ok(()));
                    }
                }
            }
        }
    }
}

/// The deepening acceptance criterion: one session over bounds `0..=k`
/// on a token-ring model encodes measurably fewer literals (and needs
/// no more conflicts) than `k + 1` independent one-shot checks, because
/// frames and learnt clauses are reused instead of rebuilt.
#[test]
fn deepening_session_reuses_solver_state() {
    let model = token_ring(4);
    let max_k = 8;

    let mut session = UnrollSat::default().start(&model, Semantics::Exactly, Budget::none());
    for k in 0..=max_k {
        let out = session.check_bound(k);
        assert!(!out.result.is_unknown());
    }
    let total = session.cumulative_stats();

    let mut oneshot_lits = 0usize;
    let mut oneshot_conflicts = 0u64;
    for k in 0..=max_k {
        let out = UnrollSat::default()
            .start(&model, Semantics::Exactly, Budget::none())
            .check_bound(k);
        oneshot_lits += out.stats.encode_lits;
        oneshot_conflicts += out.stats.solver_effort;
    }

    println!(
        "session: {} lits / {} conflicts; one-shot: {} lits / {} conflicts",
        total.encode_lits, total.solver_effort, oneshot_lits, oneshot_conflicts
    );
    assert!(
        total.encode_lits * 2 < oneshot_lits,
        "session encoded {} lits, one-shots {} — reuse should at least halve it",
        total.encode_lits,
        oneshot_lits
    );
    assert!(
        total.solver_effort <= oneshot_conflicts,
        "session needed {} conflicts, one-shots {}",
        total.solver_effort,
        oneshot_conflicts
    );
}
