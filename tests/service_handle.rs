//! The long-lived `ServiceHandle` API: result cache, priorities,
//! graceful shutdown, overload shedding.

use std::time::Duration;

use sebmc_repro::bmc::{BmcResult, Budget, Semantics};
use sebmc_repro::model::builders::{token_ring, traffic_light};
use sebmc_repro::service::{
    EngineKind, Job, ServiceConfig, ServiceHandle, ShutdownMode, SubmitError,
};

fn ring_job() -> Job {
    Job::new(token_ring(4), vec![EngineKind::Jsat], 6)
}

#[test]
fn duplicate_submission_is_answered_from_cache_with_zero_solver_effort() {
    let handle =
        ServiceHandle::start(ServiceConfig::with_workers(1).with_result_cache_bytes(1 << 20));
    let cold_id = handle.submit(ring_job()).expect("accepts");
    let cold = handle
        .next_report(Some(Duration::from_secs(60)))
        .expect("cold report");
    assert_eq!(cold.job_id, cold_id);
    assert!(!cold.cached, "first run actually solves");
    assert!(cold.stats.bounds_checked > 0, "cold run checks bounds");
    assert!(cold.verdict.is_reachable());

    let hit_id = handle.submit(ring_job()).expect("accepts");
    let hit = handle
        .next_report(Some(Duration::from_secs(60)))
        .expect("hit report");
    assert_eq!(hit.job_id, hit_id);
    assert!(hit.cached, "duplicate answered from cache");
    assert_eq!(hit.stats.solver_effort, 0, "zero solver effort on a hit");
    assert_eq!(hit.verdict.is_reachable(), cold.verdict.is_reachable());
    assert_eq!(hit.bound, cold.bound, "identical verdict bound");
    assert_eq!(hit.winners, cold.winners);
    assert_eq!(handle.cache_stats(), Some((1, 1)));
    handle.shutdown(ShutdownMode::Graceful);
}

#[test]
fn differing_bound_semantics_or_certify_miss_the_cache() {
    let handle =
        ServiceHandle::start(ServiceConfig::with_workers(1).with_result_cache_bytes(1 << 20));
    handle.submit(ring_job()).expect("accepts");
    assert!(
        !handle
            .next_report(Some(Duration::from_secs(60)))
            .expect("report")
            .cached
    );

    let mut deeper = ring_job();
    deeper.max_bound = 7;
    let within = ring_job().with_semantics(Semantics::Within);
    let certified = ring_job().with_budget(Budget::none().with_certify(true));
    for job in [deeper, within, certified] {
        handle.submit(job).expect("accepts");
        let r = handle
            .next_report(Some(Duration::from_secs(60)))
            .expect("report");
        assert!(!r.cached, "differing key field must miss: job {}", r.job_id);
    }
    let (hits, misses) = handle.cache_stats().expect("cache enabled");
    assert_eq!(hits, 0, "no variant may hit");
    assert_eq!(misses, 4, "cold run + three variants all missed");
    handle.shutdown(ShutdownMode::Graceful);
}

#[test]
fn priority_nine_is_picked_before_a_queue_of_priority_zero() {
    // One worker, pickup paused, aging disabled: the scheduler's pick
    // order is observable through each job's queue wait. The urgent
    // job is submitted *last* (its wait clock starts latest) but must
    // be picked *first* (its wait ends earliest) — so its queue wait
    // is strictly the smallest iff it jumped the whole queue. This
    // holds however slowly the test thread itself is scheduled.
    let handle = ServiceHandle::start_paused(
        ServiceConfig::with_workers(1).with_priority_aging(Duration::ZERO),
    );
    let mut low_ids = Vec::new();
    for _ in 0..3 {
        low_ids.push(handle.submit(ring_job().with_priority(0)).expect("accepts"));
    }
    let urgent = handle.submit(ring_job().with_priority(9)).expect("accepts");
    handle.resume();

    let reports = handle.shutdown(ShutdownMode::Graceful);
    assert_eq!(reports.len(), 4);
    let wait_of = |id: usize| {
        reports
            .iter()
            .find(|r| r.job_id == id)
            .expect("job reported")
            .queue_wait
    };
    for &low in &low_ids {
        assert!(
            wait_of(urgent) < wait_of(low),
            "the priority-9 job submitted behind a full priority-0 queue \
             runs first (urgent waited {:?}, job {} waited {:?})",
            wait_of(urgent),
            low,
            wait_of(low)
        );
    }
}

#[test]
fn graceful_shutdown_drains_every_queued_job_to_a_report() {
    let handle = ServiceHandle::start(ServiceConfig::with_workers(2));
    let n = 6;
    for i in 0..n {
        let job = if i % 2 == 0 {
            ring_job()
        } else {
            Job::new(traffic_light(), vec![EngineKind::Unroll], 3)
        };
        handle.submit(job).expect("accepts");
    }
    let leftover = handle.shutdown(ShutdownMode::Graceful);
    assert_eq!(leftover.len(), n, "every job drained to a report");
    for (i, r) in leftover.iter().enumerate() {
        assert_eq!(r.job_id, i, "sorted by job id");
        assert!(
            !matches!(&r.verdict, BmcResult::Unknown(_)),
            "graceful shutdown runs queued jobs to completion, job {} got {:?}",
            r.job_id,
            r.verdict
        );
    }
    // The listener-facing contract: no new work after shutdown began.
    assert!(!handle.is_accepting());
    match handle.submit(ring_job()) {
        Err(SubmitError::ShuttingDown(job)) => {
            assert_eq!(job.name, "ring_4", "refused job handed back intact");
        }
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    assert_eq!(handle.outstanding(), 0);
}

#[test]
fn immediate_shutdown_still_reports_every_job() {
    // Paused: nothing starts, so `Now` must fail the whole queue as
    // service-cancelled — reported, never dropped.
    let handle = ServiceHandle::start_paused(ServiceConfig::with_workers(1));
    let n = 4;
    for _ in 0..n {
        handle.submit(ring_job()).expect("accepts");
    }
    let leftover = handle.shutdown(ShutdownMode::Now);
    assert_eq!(leftover.len(), n, "one report per job through Now shutdown");
    for r in &leftover {
        assert_eq!(
            r.verdict,
            BmcResult::Unknown("service cancelled".into()),
            "queued jobs are cancelled, not run"
        );
        assert_eq!(r.solve_time, Duration::ZERO);
    }
}

#[test]
fn queue_depth_cap_sheds_overload_with_a_clean_error() {
    let handle =
        ServiceHandle::start_paused(ServiceConfig::with_workers(1).with_max_queue_depth(1));
    handle.submit(ring_job()).expect("first fits");
    match handle.submit(ring_job().with_priority(7)) {
        Err(SubmitError::Overloaded(job)) => {
            assert_eq!(job.priority, 7, "refused job handed back intact");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(handle.pending(), 1);
    handle.resume();
    let leftover = handle.shutdown(ShutdownMode::Graceful);
    assert_eq!(leftover.len(), 1, "the accepted job still completes");
}
