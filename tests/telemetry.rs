//! The telemetry layer end to end: a fault-injected retried job run
//! with a trace file must leave a decodable JSONL timeline covering
//! every attempt, and the metrics registry must agree with the
//! service's own report.

use std::sync::Arc;
use std::time::Duration;

use sebmc_repro::bmc::Budget;
use sebmc_repro::logic::json::Json;
use sebmc_repro::model::builders::shift_register;
use sebmc_repro::service::{CheckService, EngineKind, Job, RetryPolicy, ServiceConfig};
use sebmc_repro::telemetry::Telemetry;

/// Collects the `"ev"` field and full object of every trace line.
fn decode_trace(text: &str) -> Vec<(String, Json)> {
    text.lines()
        .map(|line| {
            let obj = Json::parse(line)
                .unwrap_or_else(|e| panic!("trace line must be valid JSON ({e}): {line}"));
            let ev = obj
                .get("ev")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("trace line must carry an event kind: {line}"))
                .to_string();
            (ev, obj)
        })
        .collect()
}

#[test]
fn trace_file_covers_every_attempt_of_a_retried_job() {
    let dir = std::env::temp_dir().join(format!(
        "sebmc_trace_test_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace_path = dir.join("service.trace.jsonl");
    let telemetry =
        Arc::new(Telemetry::with_trace_file(&trace_path).expect("open trace file for writing"));

    let mut svc =
        CheckService::new(ServiceConfig::with_workers(1).with_telemetry(Arc::clone(&telemetry)));
    // Engine safe point fires once per check_bound: hits 1 and 2
    // decide bounds 0 and 1, hit 3 panics at bound 2 — attempt 1
    // fails, attempt 2 resumes and finishes.
    let mut budget = Budget::none();
    budget.fault = "panic@engine:3".parse().expect("fault plan");
    svc.submit(
        Job::new(shift_register(4), vec![EngineKind::Unroll], 8)
            .with_budget(budget)
            .with_retry(RetryPolicy {
                backoff: Duration::from_millis(1),
                ..RetryPolicy::with_retries(2)
            }),
    );
    let report = svc.run();
    let job = &report.jobs[0];
    assert_eq!(job.attempts, 2, "one crash, one clean retry");
    assert!(job.verdict.is_reachable(), "{}", job.verdict);

    telemetry.flush();
    let text = std::fs::read_to_string(&trace_path).expect("trace file readable");
    let events = decode_trace(&text);
    assert!(!events.is_empty(), "the run leaves a timeline");

    // Sequence numbers are dense and monotone: nothing was dropped.
    for (i, (_, obj)) in events.iter().enumerate() {
        assert_eq!(
            obj.get("seq").and_then(Json::as_u64),
            Some(i as u64),
            "seq {i} in order"
        );
        assert!(obj.get("t_us").and_then(Json::as_u64).is_some());
    }

    let of_kind = |kind: &str| -> Vec<&Json> {
        events
            .iter()
            .filter(|(ev, _)| ev == kind)
            .map(|(_, obj)| obj)
            .collect()
    };
    assert_eq!(of_kind("submit").len(), 1);
    assert_eq!(of_kind("pop").len(), 1);

    // Every attempt is on the timeline: start 1 and 2, the first
    // ending in a retry (with the failure's reason), the second final.
    let starts: Vec<u64> = of_kind("attempt_start")
        .iter()
        .filter_map(|o| o.get("attempt").and_then(Json::as_u64))
        .collect();
    assert_eq!(starts, vec![1, 2], "one attempt_start per attempt");
    let ends: Vec<(u64, String)> = of_kind("attempt_end")
        .iter()
        .map(|o| {
            (
                o.get("attempt").and_then(Json::as_u64).expect("attempt"),
                o.get("outcome")
                    .and_then(Json::as_str)
                    .expect("outcome")
                    .to_string(),
            )
        })
        .collect();
    assert_eq!(
        ends,
        vec![(1, "retry".to_string()), (2, "final".to_string())]
    );
    let retry_end = of_kind("attempt_end")[0];
    assert!(
        retry_end
            .get("reason")
            .and_then(Json::as_str)
            .is_some_and(|r| r.contains("injected fault")),
        "the retry records why: {retry_end}"
    );
    assert_eq!(of_kind("backoff").len(), 1, "one pause between attempts");
    // The retry resumed mid-sweep, so bound entries from both attempts
    // show up and cover the resume point.
    let bounds: Vec<u64> = of_kind("bound")
        .iter()
        .filter_map(|o| o.get("k").and_then(Json::as_u64))
        .collect();
    assert_eq!(
        bounds,
        vec![0, 1, 2, 2, 3, 4],
        "attempt 1 enters bounds 0..=2 (panicking at 2), attempt 2 \
         resumes at the undecided bound 2 and sweeps to the verdict"
    );

    // The registry agrees with the service report.
    let snapshot = Json::parse(&telemetry.snapshot_json()).expect("snapshot parses");
    let metrics = snapshot.get("metrics").expect("metrics").clone();
    let counter = |key: &str| metrics.get(key).and_then(Json::as_u64).expect("metric");
    assert_eq!(counter("jobs_submitted"), 1);
    assert_eq!(counter("jobs_completed"), 1);
    assert_eq!(counter("jobs_retried"), 1);
    assert_eq!(counter("jobs_quarantined"), 0);
    assert!(
        counter("solver_propagations") > 0,
        "solver progress reached the registry"
    );
    assert_eq!(
        report.queue_pops.iter().sum::<u64>(),
        1,
        "the aggregate's pop counts match the single pickup"
    );

    std::fs::remove_dir_all(&dir).ok();
}
