//! Miniature versions of the paper's headline claims, asserted as
//! tests so regressions in the reproduction's *shape* are caught early.
//! The full-scale runs live in `crates/bench` (see EXPERIMENTS.md).

use sebmc_repro::bmc::{
    encode_qbf_linear, encode_qbf_squaring, encode_unrolled, BoundedChecker, Budget, JSat,
    QbfBackend, QbfLinear, Semantics, UnrollSat,
};
use sebmc_repro::model::{builders, suite13_small};
use std::time::Duration;

/// Builds a model in the paper's regime: a transition relation far
/// larger than the state width (`|TR| ≫ n`), as in industrial designs.
fn dense_model() -> sebmc_repro::model::Model {
    use sebmc_repro::model::ModelBuilder;
    let mut b = ModelBuilder::new("dense");
    let s = b.state_vars(6, "s");
    let ins = b.inputs(2, "i");
    let mut pool: Vec<_> = s.iter().chain(ins.iter()).copied().collect();
    for g in 0..300usize {
        let x = pool[(g * 7 + 3) % pool.len()];
        let y = pool[(g * 13 + 5) % pool.len()];
        let z = match g % 3 {
            0 => b.aig_mut().and(x, !y),
            1 => b.aig_mut().or(!x, y),
            _ => b.aig_mut().xor(x, y),
        };
        pool.push(z);
    }
    // Each next function folds over a sixth of the pool, so the whole
    // 300-gate cloud is in the transition cone.
    for i in 0..6 {
        let members: Vec<_> = pool.iter().copied().skip(i).step_by(6).collect();
        let mut f = members[0];
        for &g in &members[1..] {
            f = b.aig_mut().xor(f, g);
        }
        b.set_next(i, f);
    }
    let t = b.aig_mut().eq_const(&s, 0b101010);
    b.set_target(t);
    b.build().expect("dense model is well-formed")
}

/// §2 claim: formulation (1) grows by Θ(|TR|) per iteration while
/// formulation (2) grows by Θ(n); with a non-trivial transition
/// relation the unrolled growth must dominate.
#[test]
fn qbf_growth_is_smaller_than_unroll_growth() {
    let model = dense_model();
    assert!(
        model.tr_cone_size() > 40 * model.num_state_vars(),
        "test premise: |TR| must dwarf the state width"
    );
    let growth = |k: usize, f: &dyn Fn(usize) -> usize| f(k + 1) - f(k);
    let unroll_size = |k: usize| {
        encode_unrolled(&model, k, Semantics::Exactly)
            .cnf
            .num_literals()
    };
    let qbf_size = |k: usize| encode_qbf_linear(&model, k).formula.matrix().num_literals();
    let gu = growth(6, &unroll_size);
    let gq = growth(6, &qbf_size);
    assert!(
        gq < gu,
        "per-iteration growth: qbf {gq} must be below unroll {gu}"
    );
    // And the QBF growth must be independent of |TR|: compare two models
    // with the same state count but very different TR sizes.
    let small_tr = builders::token_ring(8);
    let big_tr = builders::random_fsm(8, 2, 99);
    let g_small = encode_qbf_linear(&small_tr, 7)
        .formula
        .matrix()
        .num_literals()
        - encode_qbf_linear(&small_tr, 6)
            .formula
            .matrix()
            .num_literals();
    let g_big = encode_qbf_linear(&big_tr, 7)
        .formula
        .matrix()
        .num_literals()
        - encode_qbf_linear(&big_tr, 6)
            .formula
            .matrix()
            .num_literals();
    // Same state width ⇒ identical per-iteration growth, despite the
    // TR size difference.
    assert_eq!(g_small, g_big, "growth must not depend on |TR|");
}

/// §2 claim: the number of universally quantified variables in (2)
/// does not change from iteration to iteration; in (3) it grows with
/// the level count while iterations shrink to log₂ k.
#[test]
fn universal_counts_match_paper() {
    let model = builders::johnson_counter(5);
    let n = model.num_state_vars();
    for k in 2..10 {
        assert_eq!(encode_qbf_linear(&model, k).formula.num_universals(), 2 * n);
    }
    for (k, levels) in [(2usize, 1usize), (4, 2), (8, 3), (16, 4)] {
        let f = encode_qbf_squaring(&model, k).formula;
        assert_eq!(f.num_universals(), 2 * n * levels, "bound {k}");
    }
}

/// §3 claim (the headline table, miniaturized): under a uniform small
/// budget, SAT-based BMC solves at least as many instances as jSAT,
/// and both beat the general-purpose QBF solver by a wide margin.
#[test]
fn solver_ordering_matches_paper_shape() {
    let budget = Budget {
        timeout: Some(Duration::from_millis(150)),
        max_formula_bytes: Some(8_000_000),
        ..Budget::default()
    };
    let mut sat = UnrollSat::with_budget(budget.clone());
    let mut jsat = JSat::with_budget(budget.clone());
    let mut qbf = QbfLinear::with_budget(QbfBackend::Qdpll, budget);

    let (mut sat_solved, mut jsat_solved, mut qbf_solved, mut total) = (0, 0, 0, 0);
    for model in suite13_small() {
        for k in 1..=6 {
            total += 1;
            if !sat.check(&model, k, Semantics::Exactly).result.is_unknown() {
                sat_solved += 1;
            }
            if !jsat
                .check(&model, k, Semantics::Exactly)
                .result
                .is_unknown()
            {
                jsat_solved += 1;
            }
            if !qbf.check(&model, k, Semantics::Exactly).result.is_unknown() {
                qbf_solved += 1;
            }
        }
    }
    assert!(
        sat_solved >= jsat_solved,
        "SAT ({sat_solved}) must solve at least as many as jSAT ({jsat_solved}) of {total}"
    );
    assert!(
        jsat_solved > qbf_solved,
        "jSAT ({jsat_solved}) must beat the general-purpose QBF solver ({qbf_solved}) of {total}"
    );
}

/// Title claim: jSAT's in-memory formula is independent of the bound,
/// while the unrolled formula grows linearly, so for large enough
/// bounds jSAT's peak memory is smaller on the same instance.
#[test]
fn jsat_memory_beats_unroll_at_large_bounds() {
    let model = builders::fifo(2);
    let k = 24;
    let mut jsat = JSat::default();
    let mut unroll = UnrollSat::default();
    let js = jsat.check(&model, k, Semantics::Exactly).stats;
    let us = unroll.check(&model, k, Semantics::Exactly).stats;
    assert!(
        js.encode_lits < us.encode_lits / 4,
        "jSAT static formula ({}) must be far below the unrolled formula ({})",
        js.encode_lits,
        us.encode_lits
    );
}
