//! Fault-injection drills for the checking service: deterministic
//! failures (`FaultPlan`) driven through the supervisor /
//! retry / quarantine / shedding machinery, asserting the service's
//! failure-semantics contract — every submitted job is reported,
//! retries resume where the sweep stopped, budgets are never exceeded,
//! and degradation is graceful, not silent.

use std::time::Duration;

use sebmc_repro::bmc::{BmcResult, Budget};
use sebmc_repro::logic::fault::FaultPlan;
use sebmc_repro::model::builders::{shift_register, token_ring, traffic_light};
use sebmc_repro::service::{CheckService, EngineKind, Job, RetryPolicy, ServiceConfig};

fn plan(spec: &str) -> FaultPlan {
    spec.parse().expect("valid fault plan")
}

fn budget_with_fault(spec: &str) -> Budget {
    let mut b = Budget::none();
    b.fault = plan(spec);
    b
}

/// A retry policy tuned for tests: immediate-ish backoff.
fn retries(n: u32) -> RetryPolicy {
    RetryPolicy {
        backoff: Duration::from_millis(1),
        ..RetryPolicy::with_retries(n)
    }
}

/// An injected engine panic is contained by the supervisor, the job is
/// retried, and the retry resumes at the first *undecided* bound —
/// bounds already swept are not re-checked. Sibling jobs in the queue
/// are untouched.
#[test]
fn injected_engine_panic_is_retried_and_resumes_at_last_decided_bound() {
    let mut svc = CheckService::new(ServiceConfig::with_workers(2));
    // Engine safe point fires once per check_bound: hits 1 and 2 decide
    // bounds 0 and 1; hit 3 panics at bound 2's entry.
    svc.submit(
        Job::new(shift_register(4), vec![EngineKind::Unroll], 8)
            .with_budget(budget_with_fault("panic@engine:3"))
            .with_retry(retries(2)),
    );
    svc.submit(Job::new(token_ring(3), vec![EngineKind::Jsat], 4));
    let r = svc.run();
    assert_eq!(r.jobs.len(), 2, "no job lost to the injected panic");
    let j = &r.jobs[0];
    assert!(j.verdict.is_reachable(), "retry recovered: {}", j.verdict);
    assert_eq!(j.bound, Some(4));
    assert_eq!(j.attempts, 2, "one crash, one clean retry");
    assert_eq!(
        j.resumed_from,
        Some(2),
        "bounds 0..=1 were decided before the crash; the retry starts at 2"
    );
    assert_eq!(j.failures.len(), 1);
    assert_eq!(j.failures[0].attempt, 1);
    assert_eq!(j.failures[0].bound_reached, Some(1));
    assert!(
        j.failures[0].reason.contains("injected fault"),
        "{}",
        j.failures[0].reason
    );
    assert!(!j.quarantined);
    assert_eq!(r.jobs_retried, 1);
    assert!(r.quarantined.is_empty());
    assert!(r.jobs[1].verdict.is_reachable(), "sibling unaffected");
    assert!(r.jobs[1].failures.is_empty());
}

/// Retries run under whatever wall-clock budget the earlier attempts
/// left over: the job's total solve time stays within the budget it
/// was submitted with, crashes included.
#[test]
fn retries_never_exceed_the_original_budget() {
    let original = Duration::from_secs(5);
    let mut budget = Budget::with_timeout(original);
    budget.fault = plan("panic@engine:1,panic@engine:2");
    let mut svc = CheckService::new(ServiceConfig::with_workers(1));
    svc.submit(
        Job::new(shift_register(3), vec![EngineKind::Unroll], 6)
            .with_budget(budget)
            .with_retry(retries(3)),
    );
    let r = svc.run();
    let j = &r.jobs[0];
    assert!(j.verdict.is_reachable(), "{}", j.verdict);
    assert_eq!(j.attempts, 3, "two injected crashes, then success");
    assert_eq!(j.failures.len(), 2);
    // Both crashes hit bound 0's entry: nothing was decided yet.
    assert_eq!(j.resumed_from, Some(0));
    assert!(
        j.solve_time < original,
        "cumulative attempts {:?} stay within the submitted budget {original:?}",
        j.solve_time
    );
}

/// A job whose every attempt fails is quarantined: reported with the
/// last failure's reason, listed on the service report's poison list,
/// and the rest of the queue keeps draining.
#[test]
fn exhausted_retries_quarantine_the_job() {
    let mut svc = CheckService::new(ServiceConfig::with_workers(1));
    svc.submit(
        Job::new(shift_register(4), vec![EngineKind::Unroll], 8)
            .with_budget(budget_with_fault(
                "panic@engine:1,panic@engine:2,panic@engine:3",
            ))
            .with_retry(retries(2)),
    );
    svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 3));
    let r = svc.run();
    let j = &r.jobs[0];
    assert!(j.quarantined);
    assert_eq!(j.attempts, 3, "all attempts consumed");
    assert_eq!(j.failures.len(), 3, "every attempt left a failure report");
    assert!(
        matches!(&j.verdict, BmcResult::Unknown(reason) if reason.contains("injected fault")),
        "{}",
        j.verdict
    );
    assert_eq!(r.quarantined, vec![0]);
    assert_eq!(r.unknown, 1);
    assert!(r.jobs[1].verdict.is_unreachable(), "queue kept draining");
}

/// An injected *spurious* cancellation (the attempt's child token
/// fires with no shed, no job token, no service token) is retryable —
/// unlike a real cancellation, which is final.
#[test]
fn spurious_cancellation_is_retried_real_cancellation_is_final() {
    let mut svc = CheckService::new(ServiceConfig::with_workers(1));
    svc.submit(
        Job::new(shift_register(3), vec![EngineKind::Unroll], 6)
            .with_budget(budget_with_fault("cancel@engine:2"))
            .with_retry(retries(2)),
    );
    let r = svc.run();
    let j = &r.jobs[0];
    assert!(j.verdict.is_reachable(), "{}", j.verdict);
    assert_eq!(j.attempts, 2);
    assert_eq!(j.failures[0].reason, "spurious cancellation");
    assert_eq!(r.jobs_retried, 1);
}

/// Injected byte-budget exhaustion (`oom`) is a *final* verdict, not a
/// retryable failure: no retry can un-exhaust a memory budget.
#[test]
fn injected_oom_is_reported_as_budget_exhausted_without_retries() {
    let mut svc = CheckService::new(ServiceConfig::with_workers(1));
    svc.submit(
        Job::new(shift_register(4), vec![EngineKind::Unroll], 8)
            .with_budget(budget_with_fault("oom@solver:5"))
            .with_retry(retries(3)),
    );
    let r = svc.run();
    let j = &r.jobs[0];
    assert_eq!(j.verdict, BmcResult::Unknown("budget exhausted".into()));
    assert_eq!(j.attempts, 1, "oom is final, not retried");
    assert!(j.failures.is_empty());
    assert_eq!(r.unknown, 1);
}

/// Memory pressure: a small job blocked behind a stalled uncapped one
/// eventually sheds it. The victim is *reported* as
/// `Unknown("shed: memory pressure")` — never dropped — and the
/// blocked job then runs to a verdict.
#[test]
fn memory_pressure_sheds_the_youngest_running_job() {
    let config = ServiceConfig::with_workers(2).with_max_total_bytes(10_000);
    let mut svc = CheckService::new(config);
    // Victim: uncapped (reserves the whole aggregate budget), stalled
    // at its first engine safe point by a 10 s injected delay. The
    // delay polls its cancel token, so the shed interrupts it promptly.
    svc.submit(
        Job::new(shift_register(4), vec![EngineKind::Unroll], 6)
            .with_budget(budget_with_fault("delay@engine:1:10000")),
    );
    // Contender: capped, but nothing is free until the victim is shed.
    svc.submit(
        Job::new(token_ring(3), vec![EngineKind::Jsat], 4)
            .with_budget(Budget::with_memory_bytes(8_000)),
    );
    let r = svc.run();
    assert_eq!(r.jobs.len(), 2);
    assert_eq!(
        r.jobs[0].verdict,
        BmcResult::Unknown("shed: memory pressure".into()),
        "victim reported, not dropped"
    );
    assert_eq!(r.jobs_shed, 1);
    let contender = &r.jobs[1];
    assert!(contender.verdict.is_reachable(), "{}", contender.verdict);
    assert!(
        contender.deferrals > 0,
        "the contender waited for admission"
    );
}

/// A portfolio job that cannot fit alongside running work is
/// downgraded to its first engine after repeated deferrals, then
/// admitted — degradation, not starvation.
#[test]
fn blocked_portfolio_job_is_downgraded_to_a_single_engine() {
    let config = ServiceConfig::with_workers(2).with_max_total_bytes(10_000);
    let mut svc = CheckService::new(config);
    // Holder: capped at 7000 bytes, stalled ~300 ms at its first
    // engine safe point — long enough to force the contender through
    // the downgrade ladder (25 deferrals × 2 ms), short enough to
    // finish normally afterwards.
    let mut holder = Budget::with_memory_bytes(7_000);
    holder.fault = plan("delay@engine:1:300");
    svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 3).with_budget(holder));
    // Contender: two engines × 3000 bytes = 6000 > the 3000 free;
    // downgraded to one engine it fits.
    svc.submit(
        Job::new(token_ring(3), vec![EngineKind::Jsat, EngineKind::Unroll], 4)
            .with_budget(Budget::with_memory_bytes(3_000)),
    );
    let r = svc.run();
    assert!(r.jobs[0].verdict.is_unreachable(), "{}", r.jobs[0].verdict);
    let j = &r.jobs[1];
    assert!(j.downgraded, "portfolio shrank under pressure");
    assert_eq!(j.engines.len(), 1, "only the first engine ran");
    assert!(j.verdict.is_reachable(), "{}", j.verdict);
    assert!(j.deferrals >= 25, "went through the deferral ladder");
    assert_eq!(r.jobs_downgraded, 1);
}

/// Satellite: a job cancelled while still queued is reported with its
/// queue wait and a zero solve wall-clock — it never ran.
#[test]
fn job_cancelled_while_queued_reports_wait_and_zero_solve_time() {
    // One worker, and a slow-ish first job so the second is still
    // queued when its token fires.
    let mut svc = CheckService::new(ServiceConfig::with_workers(1));
    let mut first = Budget::none();
    first.fault = plan("delay@engine:1:150");
    svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 3).with_budget(first));
    let victim = Job::new(shift_register(4), vec![EngineKind::Unroll], 6);
    let token = victim.budget.cancel_token();
    svc.submit(victim);
    token.cancel();
    let r = svc.run();
    assert!(r.jobs[0].verdict.is_unreachable(), "{}", r.jobs[0].verdict);
    let j = &r.jobs[1];
    assert_eq!(j.verdict, BmcResult::Unknown("cancelled".into()));
    assert_eq!(j.solve_time, Duration::ZERO, "the job never ran");
    assert_eq!(j.attempts, 0, "no attempt was started");
    assert!(j.failures.is_empty());
    // Queue wait is reported (it sat behind the delayed first job).
    assert!(
        j.queue_wait >= Duration::from_millis(50),
        "{:?}",
        j.queue_wait
    );
}

/// Satellite: whole-service cancellation fails every still-queued job
/// the same way — reported, zero solve time, queue wait preserved.
#[test]
fn service_cancellation_reports_queued_jobs_with_zero_solve_time() {
    let config = ServiceConfig::with_workers(1);
    let service_token = config.cancel.clone();
    let mut svc = CheckService::new(config);
    let mut first = Budget::none();
    first.fault = plan("delay@engine:1:10000");
    svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 3).with_budget(first));
    svc.submit(Job::new(shift_register(4), vec![EngineKind::Unroll], 6));
    svc.submit(Job::new(token_ring(3), vec![EngineKind::Jsat], 4));
    // Fire the kill switch shortly after the service starts chewing on
    // the stalled first job.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        service_token.cancel();
    });
    let r = svc.run();
    killer.join().unwrap();
    assert_eq!(r.jobs.len(), 3, "every job reported");
    // The running job was interrupted at a safe point.
    assert_eq!(
        r.jobs[0].verdict,
        BmcResult::Unknown("service cancelled".into())
    );
    // The queued jobs never ran.
    for j in &r.jobs[1..] {
        assert_eq!(j.verdict, BmcResult::Unknown("service cancelled".into()));
        assert_eq!(j.solve_time, Duration::ZERO, "job {} never ran", j.job_id);
        assert!(j.queue_wait > Duration::ZERO);
    }
}

/// The ≥8-seed stress matrix: whatever a seeded plan injects — panics,
/// stalls, spurious cancels, byte-budget exhaustion, at any layer —
/// every job produces exactly one report and the service terminates.
/// Seeds can be overridden via `SEBMC_FAULT_SEEDS` (comma-separated)
/// to reproduce a CI failure locally.
#[test]
fn seeded_fault_matrix_never_loses_a_job() {
    let seeds: Vec<u64> = match std::env::var("SEBMC_FAULT_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("SEBMC_FAULT_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=8).collect(),
    };
    for seed in seeds {
        let plan = FaultPlan::seeded(seed);
        let spec = plan.to_string();
        let mut svc = CheckService::new(ServiceConfig::with_workers(2));
        let models: Vec<(Job, &str)> = vec![
            (
                Job::new(shift_register(4), vec![EngineKind::Unroll], 6),
                "shift",
            ),
            (
                Job::new(token_ring(3), vec![EngineKind::Jsat, EngineKind::Unroll], 4),
                "ring",
            ),
            (Job::new(traffic_light(), vec![EngineKind::Unroll], 3), "tl"),
        ];
        let n = models.len();
        for (mut job, _) in models {
            // Each job arms its own copy: independent hit counters.
            job.budget.fault = plan.fresh_copy();
            // Keep injected 10 s+ delays from stalling the matrix: a
            // per-attempt cap turns them into retryable timeouts.
            job.budget.timeout = Some(Duration::from_millis(500));
            job = job.with_retry(RetryPolicy {
                backoff: Duration::from_millis(1),
                jitter_seed: seed,
                ..RetryPolicy::with_retries(2)
            });
            svc.submit(job);
        }
        let r = svc.run();
        assert_eq!(
            r.jobs.len(),
            n,
            "seed {seed} (plan '{spec}') lost a job: {} reports",
            r.jobs.len()
        );
        for j in &r.jobs {
            // Every verdict is one of the documented outcomes; in
            // particular no empty reasons and no unreported panics.
            if let BmcResult::Unknown(reason) = &j.verdict {
                assert!(!reason.is_empty(), "seed {seed}: empty unknown reason");
            }
            assert!(
                j.attempts >= 1,
                "seed {seed} job {}: no attempt recorded",
                j.job_id
            );
        }
    }
}

/// Crash-mid-write drill for the DRAT export path (ISSUE 8): an
/// injected panic kills an attempt while the proof stream is partially
/// written to `--proof-out`; the retry's fresh session re-creates
/// (truncates) the file. The contract is all-or-nothing: either no
/// proof file survives the run, or the surviving file is a complete,
/// uncorrupted stream. Exported files are *standard* binary DRAT
/// (original clauses skipped, finalizations written as additions), so
/// the offline check is byte-level completeness — every byte decodes
/// and the stream ends at a record boundary — while semantic validity
/// comes from `--certify`'s on-the-fly checker teeing off the same
/// stream the file receives.
#[test]
fn proof_export_survives_a_crash_mid_write() {
    use sebmc_repro::proof::{decode_stream, DratDecoder, TAG_ADD, TAG_DELETE};
    let dir = std::env::temp_dir().join(format!("sebmc-drat-crash-{}", std::process::id()));
    let mut svc = CheckService::new(ServiceConfig::with_workers(1).with_proof_dir(&dir));
    // Engine safe point fires once per check_bound: hits 1 and 2
    // decide bounds 0 and 1 (writing proof records along the way);
    // hit 3 panics at bound 2's entry, mid-stream.
    let mut budget = budget_with_fault("panic@engine:3");
    budget.certify = true;
    svc.submit(
        Job::new(traffic_light(), vec![EngineKind::Unroll], 4)
            .with_budget(budget)
            .with_retry(retries(2)),
    );
    let r = svc.run();
    let j = &r.jobs[0];
    assert!(j.verdict.is_unreachable(), "retry recovered: {}", j.verdict);
    assert_eq!(j.attempts, 2, "one crash, one clean retry");
    // The tee'd on-the-fly checker saw the same records the file got:
    // the retry's stream proves every bound it decided.
    let cert = j.certificate.as_ref().expect("certified run");
    assert!(cert.fully_certified(), "{cert:?}");
    let p = j
        .proof_path
        .as_ref()
        .expect("unreachable sweep keeps its proof file");
    let bytes = std::fs::read(p).expect("proof file readable");
    assert!(!bytes.is_empty());

    // Byte level: every byte decodes, nothing is truncated mid-record.
    let mut dec = DratDecoder::new();
    let mut records = 0usize;
    for &b in &bytes {
        if dec.feed(b) {
            records += 1;
            let lits = dec.take_lits();
            dec.recycle(lits);
        }
    }
    assert!(dec.at_boundary(), "stream truncated mid-record");
    assert_eq!(dec.corrupt_bytes(), 0, "stream contains corrupt bytes");
    assert!(records > 0);
    // Standard-DRAT shape: additions and deletions only.
    for (tag, _) in decode_stream(&bytes) {
        assert!(
            tag == TAG_ADD || tag == TAG_DELETE,
            "unexpected record tag {tag} in a standard-DRAT export"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The complementary outcome of the crash drill: when the crashed
/// attempt is the *last* one (no retries left), the job ends Unknown
/// and the partially-written proof file must not survive — a
/// truncated stream on disk is worse than none.
#[test]
fn exhausted_retries_leave_no_partial_proof_file() {
    let dir = std::env::temp_dir().join(format!("sebmc-drat-crash-gone-{}", std::process::id()));
    let mut svc = CheckService::new(ServiceConfig::with_workers(1).with_proof_dir(&dir));
    svc.submit(
        Job::new(traffic_light(), vec![EngineKind::Unroll], 4)
            .with_budget(budget_with_fault("panic@engine:3,panic@engine:1")),
    );
    let r = svc.run();
    let j = &r.jobs[0];
    assert!(j.verdict.is_unknown(), "no retries: {}", j.verdict);
    assert!(j.proof_path.is_none());
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .map(|d| d.map(|e| e.unwrap().path()).collect())
        .unwrap_or_default();
    assert!(
        leftovers.is_empty(),
        "partial proof left behind: {leftovers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
