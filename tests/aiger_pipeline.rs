//! End-to-end AIGER pipeline: export every suitable benchmark model,
//! re-import it (through both formats), and verify the engines reach
//! the same verdicts on the round-tripped model.

use sebmc_repro::aiger;
use sebmc_repro::bmc::{BoundedChecker, JSat, Semantics, UnrollSat};
use sebmc_repro::model::{explicit, suite13_small};

#[test]
fn suite_models_survive_ascii_round_trip() {
    for model in suite13_small() {
        let file = match aiger::model_to_aiger(&model) {
            Ok(f) => f,
            Err(e) => panic!("export of {} failed: {e}", model.name()),
        };
        assert_eq!(file.validate(), Ok(()), "{}", model.name());
        let text = aiger::to_ascii_string(&file);
        let parsed = aiger::parse_ascii(&text).expect("parse back");
        assert_eq!(parsed, file, "{} ascii round trip", model.name());
    }
}

#[test]
fn suite_models_survive_binary_round_trip() {
    for model in suite13_small() {
        let file = aiger::model_to_aiger(&model).expect("export");
        let bytes = aiger::to_binary_vec(&file).expect("canonical order");
        let parsed = aiger::parse_binary(&bytes).expect("parse back");
        assert_eq!(parsed, file, "{} binary round trip", model.name());
    }
}

#[test]
fn verdicts_preserved_through_aiger() {
    for model in suite13_small() {
        let file = aiger::model_to_aiger(&model).expect("export");
        let back = aiger::aiger_to_model(&file, model.name()).expect("import");
        let mut unroll = UnrollSat::default();
        let mut jsat = JSat::default();
        for k in 0..5 {
            let expect = explicit::reachable_in_exactly(&model, k);
            assert_eq!(
                unroll
                    .check(&back, k, Semantics::Exactly)
                    .result
                    .is_reachable(),
                expect,
                "unroll on round-tripped {} at bound {k}",
                model.name()
            );
            assert_eq!(
                jsat.check(&back, k, Semantics::Exactly)
                    .result
                    .is_reachable(),
                expect,
                "jsat on round-tripped {} at bound {k}",
                model.name()
            );
        }
    }
}

#[test]
fn symbols_preserved() {
    let model = sebmc_repro::model::builders::peterson();
    let file = aiger::model_to_aiger(&model).expect("export");
    let names: Vec<&str> = file
        .symbols
        .iter()
        .map(|(_, _, name)| name.as_str())
        .collect();
    assert!(names.contains(&"turn"));
    assert!(names.contains(&"flag0"));
    assert!(names.contains(&"sched"));
}
