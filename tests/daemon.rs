//! The `sebmc serve` daemon, driven in-process over real TCP sockets
//! with the in-tree wire client.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use sebmc_repro::logic::json::Json;
use sebmc_repro::service::{
    serve_on, JobSpec, LineEvent, LineReader, ServeOptions, ServeSummary, ServiceConfig, WireClient,
};

/// Binds a loopback listener and runs the daemon on a background
/// thread; returns the address and the join handle yielding the
/// summary.
fn spawn_daemon(config: ServiceConfig) -> (String, std::thread::JoinHandle<ServeSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = std::thread::spawn(move || {
        serve_on(listener, config, ServeOptions::default()).expect("serve runs")
    });
    (addr, server)
}

fn spec(line: &str) -> JobSpec {
    JobSpec::parse_line(line).expect("job line parses")
}

#[test]
fn daemon_serves_duplicates_from_cache_and_shuts_down_gracefully() {
    let (addr, server) =
        spawn_daemon(ServiceConfig::with_workers(2).with_result_cache_bytes(8 << 20));
    let mut wire = WireClient::connect(&addr).expect("connect");
    assert_eq!(
        wire.hello.get("cache").and_then(Json::as_bool),
        Some(true),
        "hello advertises the cache"
    );
    wire.ping().expect("ping round-trips");

    let id0 = wire
        .submit(&spec("suite:ring_4 jsat,unroll 6 priority=9"))
        .expect("submit io")
        .expect("accepted");
    let cold = wire
        .next_report(Some(Duration::from_secs(120)))
        .expect("report io")
        .expect("cold report arrives");
    assert_eq!(cold.get("id").and_then(Json::as_u64), Some(id0 as u64));
    assert_eq!(
        cold.get("verdict").and_then(Json::as_str),
        Some("reachable")
    );
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(cold.get("priority").and_then(Json::as_u64), Some(9));
    // (No assert on the cold run's solver_effort: effort counts
    // conflicts, and a tiny instance can legitimately solve with
    // zero, depending on which racing engine wins each bound.)

    // The duplicate: same model/semantics/bound/certify — answered
    // from the cache, zero solver effort, identical verdict.
    let id1 = wire
        .submit(&spec("suite:ring_4 jsat,unroll 6"))
        .expect("submit io")
        .expect("accepted");
    let hit = wire
        .next_report(Some(Duration::from_secs(120)))
        .expect("report io")
        .expect("cached report arrives");
    assert_eq!(hit.get("id").and_then(Json::as_u64), Some(id1 as u64));
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        hit.get("stats")
            .and_then(|s| s.get("solver_effort"))
            .and_then(Json::as_u64),
        Some(0),
        "a cache hit costs no solver effort"
    );
    assert_eq!(
        hit.get("verdict").and_then(Json::as_str),
        cold.get("verdict").and_then(Json::as_str),
        "identical verdict"
    );
    assert_eq!(
        hit.get("bound").and_then(Json::as_u64),
        cold.get("bound").and_then(Json::as_u64)
    );
    assert_eq!(
        hit.get("certificate").map(Json::to_string),
        cold.get("certificate").map(Json::to_string),
        "identical certificate summary"
    );

    // A different-priority mix still round-trips.
    wire.submit(&spec("suite:traffic unroll 3 priority=0"))
        .expect("submit io")
        .expect("accepted");
    let third = wire
        .next_report(Some(Duration::from_secs(120)))
        .expect("report io")
        .expect("third report");
    assert_eq!(third.get("priority").and_then(Json::as_u64), Some(0));

    wire.shutdown("graceful").expect("shutdown acked");
    let summary = server.join().expect("server thread joins");
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.jobs_submitted, 3);
    assert_eq!(summary.jobs_rejected, 0);
    assert_eq!(summary.reports_delivered, 3);
    assert!(summary.leftover.is_empty(), "every report was delivered");
    assert_eq!(summary.cache, Some((1, 2)));
}

#[test]
fn stats_frame_counters_agree_with_the_exit_summary() {
    let (addr, server) =
        spawn_daemon(ServiceConfig::with_workers(1).with_result_cache_bytes(8 << 20));
    let mut wire = WireClient::connect(&addr).expect("connect");
    // A cold run plus an identical duplicate answered from the cache.
    for _ in 0..2 {
        wire.submit(&spec("suite:ring_4 jsat 6"))
            .expect("submit io")
            .expect("accepted");
    }
    for _ in 0..2 {
        wire.next_report(Some(Duration::from_secs(120)))
            .expect("report io")
            .expect("report arrives");
    }
    let snapshot = wire.stats().expect("stats round-trips");
    assert!(
        snapshot.get("uptime_ms").and_then(Json::as_u64).is_some(),
        "snapshot carries the daemon's uptime: {snapshot}"
    );
    let metrics = snapshot.get("metrics").expect("metrics object").clone();
    let counter = |key: &str| {
        metrics
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("metric '{key}' missing in {metrics}"))
    };
    assert_eq!(counter("jobs_submitted"), 2);
    assert_eq!(counter("jobs_completed"), 1, "the cache hit never ran");
    assert_eq!(counter("jobs_cached"), 1);
    assert_eq!(counter("cache_hits"), 1);
    assert_eq!(counter("cache_misses"), 1);
    assert_eq!(
        counter("queue_depth"),
        0,
        "drained once both reports landed"
    );
    assert_eq!(counter("jobs_in_flight"), 0);
    assert_eq!(counter("queue_depth_high_water"), 1);
    assert_eq!(
        metrics
            .get("solve_latency_ms")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        Some(1),
        "one solved job in the latency histogram"
    );

    wire.shutdown("graceful").expect("shutdown acked");
    let summary = server.join().expect("server thread joins");
    // The live snapshot and the exit summary tell the same story.
    assert_eq!(summary.jobs_submitted, 2);
    assert_eq!(summary.reports_delivered, 2);
    assert_eq!(summary.cache, Some((1, 1)));
    assert!(summary.uptime > Duration::ZERO);
    let json = summary.to_json();
    assert!(json.contains("\"uptime_ms\":"), "{json}");
    assert!(
        json.contains("\"cache\":{\"hits\":1,\"misses\":1}"),
        "{json}"
    );
}

#[test]
fn graceful_shutdown_drains_in_flight_jobs_and_rejects_new_submissions() {
    let (addr, server) = spawn_daemon(ServiceConfig::with_workers(1));
    let mut wire = WireClient::connect(&addr).expect("connect");
    // Whether or not this finishes before the shutdown frame lands,
    // the server must answer the pipelined post-shutdown submission
    // with a refusal (it drains buffered frames before closing).
    wire.submit(&spec("suite:ring_12 jsat 11"))
        .expect("submit io")
        .expect("accepted");
    wire.shutdown("graceful").expect("shutdown acked");
    let refusal = wire
        .submit(&spec("suite:traffic unroll 3"))
        .expect("submit io")
        .expect_err("no new work after shutdown");
    assert_eq!(refusal, "shutting down");
    // The in-flight job still drains to a report over this connection.
    let report = wire
        .next_report(Some(Duration::from_secs(120)))
        .expect("report io")
        .expect("drained report");
    assert_ne!(
        report.get("verdict").and_then(Json::as_str),
        Some("unknown"),
        "graceful shutdown runs the in-flight job to completion"
    );
    let summary = server.join().expect("server thread joins");
    assert_eq!(summary.jobs_submitted, 1);
    assert_eq!(summary.jobs_rejected, 1);
    assert_eq!(summary.reports_delivered, 1);
    assert!(summary.leftover.is_empty(), "no job dropped");
}

#[test]
fn malformed_frames_get_protocol_errors_not_disconnects() {
    let (addr, server) = spawn_daemon(ServiceConfig::with_workers(1));
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = LineReader::new(stream.try_clone().expect("clone"));
    let read_frame = |reader: &mut LineReader<TcpStream>| -> Json {
        match reader.read_line() {
            LineEvent::Line(l) => Json::parse(&l).expect("server frames parse"),
            other => panic!("expected a frame, got {other:?}"),
        }
    };
    assert_eq!(
        read_frame(&mut reader).get("op").and_then(Json::as_str),
        Some("hello")
    );
    for (bad, expect_in_message) in [
        ("this is not json", "bad frame"),
        ("{\"op\":\"frobnicate\"}", "unknown op"),
        ("{\"model\":\"suite:ring_4\"}", "missing"),
    ] {
        stream.write_all(bad.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let reply = read_frame(&mut reader);
        assert_eq!(reply.get("op").and_then(Json::as_str), Some("error"));
        let message = reply
            .get("message")
            .and_then(Json::as_str)
            .expect("error message");
        assert!(
            message.contains(expect_in_message),
            "message '{message}' should mention '{expect_in_message}'"
        );
    }
    stream
        .write_all(b"{\"op\":\"shutdown\",\"mode\":\"now\"}\n")
        .expect("write");
    assert_eq!(
        read_frame(&mut reader).get("op").and_then(Json::as_str),
        Some("shutdown_ack")
    );
    let summary = server.join().expect("server thread joins");
    assert_eq!(summary.jobs_submitted, 0);
    assert_eq!(summary.jobs_rejected, 1, "the malformed submission");
}

#[test]
fn full_queue_refuses_submissions_with_overload_error() {
    let (addr, server) = spawn_daemon(ServiceConfig::with_workers(1).with_max_queue_depth(0));
    let mut wire = WireClient::connect(&addr).expect("connect");
    let refusal = wire
        .submit(&spec("suite:ring_4 jsat 6"))
        .expect("submit io")
        .expect_err("depth-0 queue accepts nothing");
    assert_eq!(refusal, "overloaded: queue full");
    wire.shutdown("now").expect("shutdown acked");
    let summary = server.join().expect("server thread joins");
    assert_eq!(summary.jobs_submitted, 0);
    assert_eq!(summary.jobs_rejected, 1);
}
