//! Portfolio-level deepening: per-bound races over live engine
//! sessions (`DeepeningPortfolio`) — verdict agreement against the
//! explicit-state oracle, loser-cancellation promptness, and honest
//! loser-stats accounting.

use std::time::{Duration, Instant};

use sebmc_repro::bmc::{
    BmcOutcome, BmcResult, Budget, CancelToken, DeepeningPortfolio, Engine, JSat, RunStats,
    Semantics, Session, UnrollSat,
};
use sebmc_repro::model::{builders::token_ring, explicit, suite::suite13_small, Model};
use sebmc_repro::service::{CheckService, EngineKind, Job, ServiceConfig};

fn jsat_unroll() -> Vec<Box<dyn Engine + Send>> {
    vec![Box::new(JSat::default()), Box::new(UnrollSat::default())]
}

/// Every decided per-bound verdict — the winner's *and* every decided
/// loser entry — must match the explicit-state oracle, on every family
/// of the ground-truth suite.
#[test]
fn per_bound_verdicts_agree_with_the_oracle_across_the_suite() {
    for model in suite13_small() {
        let mut p =
            DeepeningPortfolio::start(&model, Semantics::Exactly, jsat_unroll(), Budget::none());
        for k in 0..=4usize {
            let out = p.check_bound(k);
            assert!(out.supported, "{}: bound {k} unsupported", model.name());
            let expect = explicit::reachable_in_exactly(&model, k);
            for e in &out.entries {
                match &e.outcome.result {
                    BmcResult::Reachable(_) => {
                        assert!(
                            expect,
                            "{} bound {k}: {} says reachable",
                            model.name(),
                            e.engine
                        );
                    }
                    BmcResult::Unreachable => {
                        assert!(
                            !expect,
                            "{} bound {k}: {} says unreachable",
                            model.name(),
                            e.engine
                        );
                    }
                    // Cancelled losers decided nothing — that is fine.
                    BmcResult::Unknown(_) => {}
                }
            }
            let winner = out
                .winning_entry()
                .unwrap_or_else(|| panic!("{} bound {k}: nobody decided", model.name()));
            assert_eq!(
                winner.outcome.result.is_reachable(),
                expect,
                "{} bound {k}: shared verdict wrong",
                model.name()
            );
        }
    }
}

/// A deliberately slow engine whose session survives cancellation: it
/// sleeps in 2 ms slices polling its budget, for up to 30 s per bound.
struct SlowEngine;
struct SlowSession {
    budget: Budget,
    started: Instant,
    total: RunStats,
}

impl Engine for SlowEngine {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn start(&self, _m: &Model, _s: Semantics, budget: Budget) -> Box<dyn Session> {
        Box::new(SlowSession {
            budget,
            started: Instant::now(),
            total: RunStats::default(),
        })
    }
}

impl Session for SlowSession {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn semantics(&self) -> Semantics {
        Semantics::Exactly
    }
    fn check_bound(&mut self, _k: usize) -> BmcOutcome {
        let call = Instant::now();
        let deadline = call + Duration::from_secs(30);
        let result = loop {
            if Instant::now() >= deadline {
                break BmcResult::Unreachable;
            }
            if self.budget.expired(self.started) {
                break BmcResult::Unknown(self.budget.unknown_reason());
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let stats = RunStats {
            duration: call.elapsed(),
            bounds_checked: 1,
            ..RunStats::default()
        };
        self.total.absorb(&stats);
        BmcOutcome::new(result, stats)
    }
    fn set_cancel(&mut self, token: CancelToken) {
        self.budget.cancel = token;
    }
    fn cumulative_stats(&self) -> RunStats {
        self.total.clone()
    }
}

/// Loser-cancellation promptness: each raced bound must return in
/// roughly the fast engine's time (not the sleeper's 30 s), and the
/// cancelled sleeper must survive into the next bound with its session
/// state intact.
#[test]
fn losers_are_cancelled_promptly_and_survive_across_bounds() {
    let model = token_ring(4);
    let engines: Vec<Box<dyn Engine + Send>> =
        vec![Box::new(UnrollSat::default()), Box::new(SlowEngine)];
    let mut p = DeepeningPortfolio::start(&model, Semantics::Exactly, engines, Budget::none());
    for k in 0..3usize {
        let start = Instant::now();
        let out = p.check_bound(k);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(10),
            "bound {k} raced for {elapsed:?}: loser cancellation not prompt"
        );
        assert!(out.verdict().is_unreachable(), "bound {k}");
        assert_eq!(
            out.entries[1].outcome.result,
            BmcResult::Unknown("cancelled".into()),
            "bound {k}: the sleeper must have been cancelled, not finished"
        );
    }
    // Three races → the *same* slow session accumulated three checks
    // (a fresh session per bound would report one).
    let stats = p.engine_stats();
    assert_eq!(stats[1].0, "slow");
    assert_eq!(stats[1].1.bounds_checked, 3, "loser session survived");
    // And its burnt time is visible in the portfolio accounting.
    assert!(p.cumulative_stats().duration >= stats[1].1.duration);
}

/// Racing effort is accounted honestly end-to-end: a service job run
/// as a two-engine portfolio must report *more* bound checks than the
/// bounds it decided (the cancelled losers' work rides along).
#[test]
fn job_reports_count_the_losers_racing_effort() {
    let mut svc = CheckService::new(ServiceConfig::with_workers(1));
    svc.submit(Job::new(
        token_ring(4),
        vec![EngineKind::Jsat, EngineKind::Unroll],
        6,
    ));
    let r = svc.run();
    let j = &r.jobs[0];
    assert!(j.verdict.is_reachable());
    assert_eq!(j.bound, Some(3));
    assert_eq!(j.bounds_checked, 4, "bounds 0..=3 raced");
    assert!(
        j.stats.bounds_checked > j.bounds_checked,
        "portfolio stats ({}) must include loser replies beyond the {} decided bounds",
        j.stats.bounds_checked,
        j.bounds_checked
    );
}
