//! The QBF encodings must be exportable to QDIMACS (for external
//! general-purpose solvers, as the paper's methodology requires) and
//! must survive the round-trip unchanged.

use sebmc_repro::bmc::{encode_qbf_linear, encode_qbf_squaring};
use sebmc_repro::model::builders::{johnson_counter, token_ring};
use sebmc_repro::qbf::{qdimacs, QdpllSolver};

#[test]
fn linear_encoding_round_trips_through_qdimacs() {
    let model = token_ring(3);
    for k in [1usize, 3, 5] {
        let enc = encode_qbf_linear(&model, k);
        let text = qdimacs::to_string(&enc.formula);
        let parsed = qdimacs::parse(&text).expect("our exports must parse");
        assert_eq!(
            parsed.matrix().num_clauses(),
            enc.formula.matrix().num_clauses()
        );
        assert_eq!(parsed.num_universals(), enc.formula.num_universals());
        assert_eq!(parsed.num_alternations(), enc.formula.num_alternations());
    }
}

#[test]
fn squaring_encoding_round_trips_through_qdimacs() {
    let model = johnson_counter(3);
    for k in [1usize, 2, 4, 8] {
        let enc = encode_qbf_squaring(&model, k);
        let text = qdimacs::to_string(&enc.formula);
        let parsed = qdimacs::parse(&text).expect("our exports must parse");
        assert_eq!(parsed.num_universals(), enc.formula.num_universals());
    }
}

#[test]
fn verdict_preserved_across_qdimacs_round_trip() {
    let model = token_ring(3);
    // Reachable at exactly 2 (token moves 2 steps).
    let enc = encode_qbf_linear(&model, 2);
    let parsed = qdimacs::parse(&qdimacs::to_string(&enc.formula)).unwrap();
    let mut solver = QdpllSolver::new();
    let direct = solver.solve(&enc.formula);
    let roundtrip = solver.solve(&parsed);
    assert_eq!(direct, roundtrip);
    assert_eq!(direct, sebmc_repro::qbf::QbfResult::True);
}
