//! The certification oracle: one seeded sweep over the suite models
//! and the SAT-backed engines asserting that **both verdict
//! polarities** are machine-checked under [`Budget::certify`] —
//! every Unsat bound's streamed DRAT proof passes the internal
//! forward checker, and every Sat bound's witness trace replays
//! through `Model::check_trace`. Deepening sessions and one-shot
//! checks are both covered, plus seeded random models so the sweep is
//! not limited to the hand-built families.

use sebmc_repro::bmc::{
    one_shot, BmcResult, Budget, Certificate, Engine, JSat, Semantics, UnrollSat,
};
use sebmc_repro::model::{builders, explicit, suite, Model};

const MAX_BOUND: usize = 5;

fn engines() -> Vec<Box<dyn Engine>> {
    vec![Box::new(JSat::default()), Box::new(UnrollSat::default())]
}

fn oracle(model: &Model, k: usize, semantics: Semantics) -> bool {
    match semantics {
        Semantics::Exactly => explicit::reachable_in_exactly(model, k),
        Semantics::Within => explicit::reachable_within(model, k),
    }
}

/// Checks one decided bound's outcome against the oracle and its
/// certificate against the verdict-polarity contract.
fn assert_certified(
    model: &Model,
    engine_name: &str,
    k: usize,
    semantics: Semantics,
    result: &BmcResult,
    cert: Option<&Certificate>,
) {
    let ctx = format!(
        "{} on {} bound {k} ({semantics})",
        engine_name,
        model.name()
    );
    assert!(!result.is_unknown(), "{ctx}: unexpectedly unknown");
    assert_eq!(
        result.is_reachable(),
        oracle(model, k, semantics),
        "{ctx}: verdict disagrees with the explicit-state oracle"
    );
    let cert = cert.unwrap_or_else(|| panic!("{ctx}: no certificate attached"));
    assert!(cert.fully_certified(), "{ctx}: {cert:?}");
    assert_eq!(cert.bounds_attempted, 1, "{ctx}");
    match result {
        BmcResult::Unreachable => {
            assert!(
                cert.unsat_proofs > 0,
                "{ctx}: an Unsat bound must finalize at least one core"
            );
        }
        BmcResult::Reachable(t) => {
            // The engine already certified the replay; re-check here so
            // the oracle test does not trust the flag alone.
            let trace = t.as_ref().expect("SAT engines produce witnesses");
            assert_eq!(model.check_trace(trace), Ok(()), "{ctx}");
        }
        BmcResult::Unknown(_) => unreachable!(),
    }
}

/// Every Unsat bound proof-checked, every Sat bound replayed — one
/// deepening session per (model, engine, semantics) over the small
/// ground-truth suite.
#[test]
fn suite_sweep_certifies_both_polarities_in_sessions() {
    for model in suite::suite13_small() {
        for engine in engines() {
            for semantics in [Semantics::Exactly, Semantics::Within] {
                let mut session =
                    engine.start(&model, semantics, Budget::none().with_certify(true));
                for k in 0..=MAX_BOUND {
                    let out = session.check_bound(k);
                    assert_certified(
                        &model,
                        engine.name(),
                        k,
                        semantics,
                        &out.result,
                        out.certificate.as_ref(),
                    );
                    assert!(
                        out.stats.peak_proof_bytes > 0,
                        "proof bytes reported for {} on {}",
                        engine.name(),
                        model.name()
                    );
                }
            }
        }
    }
}

/// One-shot checks (fresh session per bound) certify exactly like
/// deepening sessions.
#[test]
fn one_shot_checks_are_certified_too() {
    for model in suite::suite13_small() {
        for engine in engines() {
            let budget = engine.default_budget().with_certify(true);
            for k in [0, 2, 4] {
                let out = engine
                    .start(&model, Semantics::Exactly, budget.clone())
                    .check_bound(k);
                assert_certified(
                    &model,
                    engine.name(),
                    k,
                    Semantics::Exactly,
                    &out.result,
                    out.certificate.as_ref(),
                );
            }
        }
    }
}

/// Seeded random models: the certification contract must hold beyond
/// the hand-built families (random transition structure stresses the
/// proof logging differently — deeper conflicts, more learnt churn).
#[test]
fn seeded_random_models_certify() {
    for seed in [7u64, 1105, 90125] {
        let model = builders::random_fsm(10, 2, seed);
        for engine in engines() {
            let mut session = engine.start(
                &model,
                Semantics::Exactly,
                Budget::none().with_certify(true),
            );
            for k in 0..=4 {
                let out = session.check_bound(k);
                assert_certified(
                    &model,
                    engine.name(),
                    k,
                    Semantics::Exactly,
                    &out.result,
                    out.certificate.as_ref(),
                );
            }
        }
    }
}

/// `one_shot` through the convenience helper keeps certificates off by
/// default — certification is strictly opt-in.
#[test]
fn certification_is_opt_in() {
    let model = builders::traffic_light();
    for engine in engines() {
        let out = one_shot(engine.as_ref(), &model, 3, Semantics::Exactly);
        assert!(out.result.is_unreachable());
        assert!(out.certificate.is_none(), "{}", engine.name());
        assert_eq!(out.stats.peak_proof_bytes, 0);
    }
}
