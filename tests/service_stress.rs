//! Seeded stress sweep of the checking service: random job mixes,
//! mid-run per-job and whole-service cancellation, and budget-starved
//! jobs — every submitted job must come back as exactly one report,
//! with decided verdicts matching the explicit-state oracle.

use std::time::{Duration, Instant};

use sebmc_repro::bmc::{BmcResult, Budget};
use sebmc_repro::logic::rng::SplitMix64;
use sebmc_repro::model::{builders, explicit, suite::suite13_small};
use sebmc_repro::service::{CheckService, EngineKind, Job, ServiceConfig};

/// Random mixes of models, engine selections, bounds and byte caps,
/// drained on a 3-worker pool. Every job is reported (budget-starved
/// ones as `Unknown`, never dropped) and every decided verdict agrees
/// with the oracle.
#[test]
fn seeded_random_job_mixes_report_every_job_with_oracle_verdicts() {
    let models = suite13_small();
    let mut rng = SplitMix64::new(2005);
    for round in 0..3 {
        let mut svc = CheckService::new(ServiceConfig::with_workers(3));
        let n_jobs = 6 + rng.below(5); // 6..=10
        let mut specs = Vec::new();
        for _ in 0..n_jobs {
            let model = models[rng.below(models.len())].clone();
            let engines = match rng.below(4) {
                0 => vec![EngineKind::Jsat],
                1 => vec![EngineKind::Unroll],
                2 => vec![EngineKind::Jsat, EngineKind::Unroll],
                _ => vec![EngineKind::Unroll, EngineKind::Jsat],
            };
            let max_bound = 1 + rng.below(4); // 1..=4

            // Every fourth job is starved: a byte cap no real encoding
            // fits in. It must surface as Unknown, not vanish.
            let starved = rng.below(4) == 0;
            let budget = if starved {
                Budget::with_memory_bytes(64)
            } else {
                Budget::none()
            };
            specs.push((model.clone(), max_bound, starved));
            svc.submit(Job::new(model, engines, max_bound).with_budget(budget));
        }
        let report = svc.run();
        assert_eq!(
            report.jobs.len(),
            n_jobs,
            "round {round}: every job reported"
        );
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.job_id, i, "round {round}: reports in submission order");
            let (model, max_bound, starved) = &specs[i];
            match &j.verdict {
                BmcResult::Reachable(_) => {
                    let b = j.bound.expect("reachable verdicts carry their bound");
                    assert!(
                        explicit::reachable_in_exactly(model, b),
                        "round {round} job {i} ({}): bound {b} not reachable",
                        model.name()
                    );
                    // And it is the *first* reachable bound.
                    for earlier in 0..b {
                        assert!(
                            !explicit::reachable_in_exactly(model, earlier),
                            "round {round} job {i}: earlier bound {earlier} reachable"
                        );
                    }
                }
                BmcResult::Unreachable => {
                    for k in 0..=*max_bound {
                        assert!(
                            !explicit::reachable_in_exactly(model, k),
                            "round {round} job {i} ({}): oracle reaches at {k}",
                            model.name()
                        );
                    }
                }
                BmcResult::Unknown(reason) => {
                    assert!(
                        *starved,
                        "round {round} job {i} ({}): unexpected Unknown ({reason})",
                        model.name()
                    );
                }
            }
        }
        // Aggregate sanity: the wall-clock split covers every job.
        assert_eq!(report.jobs.len(), n_jobs);
        assert!(report.solve_total >= Duration::ZERO);
    }
}

/// Firing one job's own token mid-run aborts that job promptly and
/// leaves its siblings untouched.
#[test]
fn mid_run_job_cancellation_is_prompt_and_isolated() {
    let mut svc = CheckService::new(ServiceConfig::with_workers(1));
    // A genuinely long job: jsat on fifo(3) to bound 10 runs for
    // >100 ms even in release builds.
    let victim = Job::new(builders::fifo(3), vec![EngineKind::Jsat], 10);
    let token = victim.budget.cancel_token();
    svc.submit(victim);
    svc.submit(Job::new(builders::token_ring(3), vec![EngineKind::Jsat], 4));
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(25));
        token.cancel();
    });
    let start = Instant::now();
    let report = svc.run();
    canceller.join().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "cancellation was not prompt: {:?}",
        start.elapsed()
    );
    assert_eq!(
        report.jobs[0].verdict,
        BmcResult::Unknown("cancelled".into()),
        "the victim reports its cancellation"
    );
    assert!(
        report.jobs[1].verdict.is_reachable(),
        "the sibling is unaffected: {}",
        report.jobs[1].verdict
    );
}

/// Firing the service token mid-run stops the running job at its next
/// safe point and fails the whole remaining queue — with one report
/// per job, nothing dropped.
#[test]
fn mid_run_service_cancellation_reports_the_whole_queue() {
    let config = ServiceConfig::with_workers(1);
    let service_token = config.cancel.clone();
    let mut svc = CheckService::new(config);
    svc.submit(Job::new(builders::fifo(3), vec![EngineKind::Jsat], 10));
    for _ in 0..4 {
        svc.submit(Job::new(builders::token_ring(3), vec![EngineKind::Jsat], 4));
    }
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(25));
        service_token.cancel();
    });
    let start = Instant::now();
    let report = svc.run();
    canceller.join().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "service cancellation was not prompt: {:?}",
        start.elapsed()
    );
    assert_eq!(report.jobs.len(), 5, "every queued job reported");
    for j in &report.jobs {
        assert_eq!(
            j.verdict,
            BmcResult::Unknown("service cancelled".into()),
            "job {} verdict: {}",
            j.job_id,
            j.verdict
        );
    }
    // The running job burnt real time; the queued ones never started.
    assert!(report.jobs[0].solve_time > Duration::ZERO);
    assert_eq!(report.jobs[4].solve_time, Duration::ZERO);
}

/// A portfolio job under a starving byte budget still produces a
/// report: `Unknown("budget exhausted")`, not a dropped job and not a
/// hang.
#[test]
fn budget_exhausted_portfolio_jobs_surface_as_unknown() {
    let mut svc = CheckService::new(ServiceConfig::with_workers(2));
    // Two unrolling sessions race: both hit the byte cap while
    // *encoding* (deterministically — jSAT's constant formula might
    // never trip a byte cap and is no starvation subject).
    svc.submit(
        Job::new(
            builders::shift_register(16),
            vec![EngineKind::Unroll, EngineKind::Unroll],
            40,
        )
        .with_budget(Budget::with_memory_bytes(128)),
    );
    svc.submit(Job::new(builders::token_ring(3), vec![EngineKind::Jsat], 4));
    let report = svc.run();
    assert_eq!(report.jobs.len(), 2);
    match &report.jobs[0].verdict {
        BmcResult::Unknown(reason) => {
            assert!(
                reason.contains("budget") || reason.contains("cancelled"),
                "unexpected reason: {reason}"
            );
        }
        other => panic!("expected Unknown, got {other}"),
    }
    assert!(report.jobs[1].verdict.is_reachable());
    assert_eq!(report.unknown, 1);
}
