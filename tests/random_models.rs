//! Property-based cross-validation on random models.
//!
//! Seeded random transition systems; the symbolic engines must match
//! the explicit-state oracle on every sample, and witnesses must
//! replay. This is the widest soundness net in the repository: it
//! exercises the AIG, Tseitin, CDCL, jSAT and (small) QBF paths in one
//! property. Dependency-free property style — the case number printed
//! on failure reproduces the model.

use sebmc_repro::bmc::{BoundedChecker, JSat, QbfBackend, QbfLinear, Semantics, UnrollSat};
use sebmc_repro::logic::rng::SplitMix64;
use sebmc_repro::logic::AigRef;
use sebmc_repro::model::{explicit, Model, ModelBuilder};

/// Builds a small random model: 2–4 state bits, 1–2 inputs, a random
/// AIG cloud for the next functions, and a random target cube.
fn random_model(rng: &mut SplitMix64) -> Model {
    let bits = rng.range_inclusive(2, 4);
    let inputs = rng.range_inclusive(1, 2);
    let mut b = ModelBuilder::new("random");
    let state = b.state_vars(bits, "s");
    let ins = b.inputs(inputs, "i");
    let mut pool: Vec<AigRef> = state.iter().chain(ins.iter()).copied().collect();
    for _ in 0..rng.range_inclusive(1, 7) {
        let x = pool[rng.below(pool.len())];
        let y = pool[rng.below(pool.len())];
        let x = if rng.coin() { !x } else { x };
        let y = if rng.coin() { !y } else { y };
        let g = match rng.below(3) {
            0 => b.aig_mut().and(x, y),
            1 => b.aig_mut().or(x, y),
            _ => b.aig_mut().xor(x, y),
        };
        pool.push(g);
    }
    let nexts: Vec<AigRef> = (0..bits)
        .map(|_| {
            let g = pool[rng.below(pool.len())];
            if rng.coin() {
                !g
            } else {
                g
            }
        })
        .collect();
    b.set_next_all(&nexts);
    let init_value = rng.next_u64();
    let init = b.aig_mut().eq_const(&state, init_value & ((1 << bits) - 1));
    b.set_init(init);
    let mut target = AigRef::TRUE;
    for _ in 0..rng.range_inclusive(1, bits) {
        let s = state[rng.below(bits)];
        let lit = if rng.coin() { !s } else { s };
        target = b.aig_mut().and(target, lit);
    }
    b.set_target(target);
    b.build().expect("random models are well-formed")
}

fn sweep(seed: u64, cases: u64, check: impl Fn(&Model, usize)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(seed ^ (case.wrapping_mul(0x9e37_79b9)));
        let model = random_model(&mut rng);
        let k = rng.below(5);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&model, k)));
        if let Err(e) = result {
            eprintln!("property failed on case {case} (seed {seed}, k {k})");
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn unroll_and_jsat_match_oracle_on_random_models() {
    sweep(0x40D3, 48, |model, k| {
        let expect_exact = explicit::reachable_in_exactly(model, k);
        let expect_within = explicit::reachable_within(model, k);

        let mut unroll = UnrollSat::default();
        let out = unroll.check(model, k, Semantics::Exactly);
        assert_eq!(out.result.is_reachable(), expect_exact);
        if let Some(t) = out.result.witness() {
            assert_eq!(model.check_trace(t), Ok(()));
        }
        let out = unroll.check(model, k, Semantics::Within);
        assert_eq!(out.result.is_reachable(), expect_within);

        let mut jsat = JSat::default();
        let out = jsat.check(model, k, Semantics::Exactly);
        assert_eq!(out.result.is_reachable(), expect_exact);
        if let Some(t) = out.result.witness() {
            assert_eq!(model.check_trace(t), Ok(()));
        }
        let out = jsat.check(model, k, Semantics::Within);
        assert_eq!(out.result.is_reachable(), expect_within);
    });
}

#[test]
fn qdpll_matches_oracle_on_tiny_random_models() {
    sweep(0x0D33, 48, |model, k| {
        let k = k.min(2);
        // Unbudgeted QDPLL on tiny bounds must terminate and be correct.
        let mut qbf = QbfLinear::new(QbfBackend::Qdpll);
        let out = qbf.check(model, k, Semantics::Exactly);
        assert!(!out.result.is_unknown());
        assert_eq!(
            out.result.is_reachable(),
            explicit::reachable_in_exactly(model, k)
        );
    });
}

#[test]
fn aiger_round_trip_preserves_engine_verdicts() {
    sweep(0xA13E, 48, |model, k| {
        let file = sebmc_repro::aiger::model_to_aiger(model).expect("small cube init");
        let text = sebmc_repro::aiger::to_ascii_string(&file);
        let parsed = sebmc_repro::aiger::parse_ascii(&text).expect("round trip");
        let back = sebmc_repro::aiger::aiger_to_model(&parsed, "back").expect("convert");
        let mut e = UnrollSat::default();
        let a = e.check(model, k, Semantics::Exactly).result.is_reachable();
        let b = e.check(&back, k, Semantics::Exactly).result.is_reachable();
        assert_eq!(a, b, "verdict changed across AIGER round-trip");
    });
}
