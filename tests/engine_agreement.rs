//! Cross-engine agreement on the full small benchmark suite.
//!
//! Every engine must agree with the explicit-state ground truth (and
//! hence with every other engine) on all thirteen benchmark families at
//! small bounds, under both semantics. Engines with witness support
//! must produce traces that replay through the concrete simulator.

use sebmc_repro::bmc::{
    BoundedChecker, Budget, JSat, QbfBackend, QbfLinear, QbfSquaring, Semantics, UnrollSat,
};
use sebmc_repro::model::{explicit, suite13_small, Model};
use std::time::Duration;

const MAX_BOUND: usize = 6;

fn oracle(model: &Model, k: usize, semantics: Semantics) -> bool {
    match semantics {
        Semantics::Exactly => explicit::reachable_in_exactly(model, k),
        Semantics::Within => explicit::reachable_within(model, k),
    }
}

fn assert_engine_matches_oracle(
    engine: &mut dyn BoundedChecker,
    semantics: Semantics,
    bounds: impl Iterator<Item = usize> + Clone,
    skip_unknown: bool,
) {
    for model in suite13_small() {
        for k in bounds.clone() {
            let out = engine.check(&model, k, semantics);
            if out.result.is_unknown() {
                assert!(
                    skip_unknown,
                    "{} unexpectedly gave up on {} at bound {k}",
                    engine.name(),
                    model.name()
                );
                continue;
            }
            let expect = oracle(&model, k, semantics);
            assert_eq!(
                out.result.is_reachable(),
                expect,
                "{} disagrees with ground truth on {} at bound {k} ({semantics})",
                engine.name(),
                model.name()
            );
            if let Some(trace) = out.result.witness() {
                assert_eq!(
                    model.check_trace(trace),
                    Ok(()),
                    "{} produced an invalid witness on {} at bound {k}",
                    engine.name(),
                    model.name()
                );
                match semantics {
                    Semantics::Exactly => assert_eq!(trace.len(), k),
                    Semantics::Within => assert!(trace.len() <= k),
                }
            }
        }
    }
}

#[test]
fn unroll_sat_matches_oracle_exactly() {
    let mut e = UnrollSat::default();
    assert_engine_matches_oracle(&mut e, Semantics::Exactly, 0..=MAX_BOUND, false);
}

#[test]
fn unroll_sat_matches_oracle_within() {
    let mut e = UnrollSat::default();
    assert_engine_matches_oracle(&mut e, Semantics::Within, 0..=MAX_BOUND, false);
}

#[test]
fn jsat_matches_oracle_exactly() {
    let mut e = JSat::default();
    assert_engine_matches_oracle(&mut e, Semantics::Exactly, 0..=MAX_BOUND, false);
}

#[test]
fn jsat_matches_oracle_within() {
    let mut e = JSat::default();
    assert_engine_matches_oracle(&mut e, Semantics::Within, 0..=MAX_BOUND, false);
}

/// The general-purpose QBF engines are *sound but weak* (the paper's
/// point): whenever they do answer within a small budget, the answer
/// must match the oracle.
#[test]
fn qbf_linear_qdpll_sound_under_budget() {
    let mut e = QbfLinear::with_budget(
        QbfBackend::Qdpll,
        Budget::with_timeout(Duration::from_millis(300)),
    );
    assert_engine_matches_oracle(&mut e, Semantics::Exactly, 0..=3, true);
}

#[test]
fn qbf_linear_expansion_sound_under_budget() {
    let mut e = QbfLinear::with_budget(
        QbfBackend::Expansion,
        Budget {
            timeout: Some(Duration::from_millis(300)),
            max_formula_bytes: Some(8_000_000),
            ..Budget::default()
        },
    );
    assert_engine_matches_oracle(&mut e, Semantics::Exactly, 0..=3, true);
}

#[test]
fn qbf_squaring_sound_under_budget() {
    let mut e = QbfSquaring::with_budget(
        QbfBackend::Expansion,
        Budget {
            timeout: Some(Duration::from_millis(300)),
            max_formula_bytes: Some(8_000_000),
            ..Budget::default()
        },
    );
    for k in [1usize, 2, 4] {
        for model in suite13_small() {
            let out = e.check(&model, k, Semantics::Exactly);
            if out.result.is_unknown() {
                continue;
            }
            assert_eq!(
                out.result.is_reachable(),
                explicit::reachable_in_exactly(&model, k),
                "squaring disagrees on {} at bound {k}",
                model.name()
            );
        }
    }
}

/// jSAT and unrolled SAT — the two complete engines — must agree with
/// each other at larger bounds than the oracle can cover (cross-check
/// without ground truth).
#[test]
fn jsat_and_unroll_agree_on_larger_bounds() {
    let mut jsat = JSat::default();
    let mut unroll = UnrollSat::default();
    for model in suite13_small() {
        for k in [8usize, 10] {
            let a = jsat.check(&model, k, Semantics::Exactly).result;
            let b = unroll.check(&model, k, Semantics::Exactly).result;
            assert!(
                a.agrees_with(&b),
                "jsat={a} vs unroll={b} on {} at bound {k}",
                model.name()
            );
        }
    }
}
