//! `sebmc` — command-line bounded model checker over AIGER circuits.
//!
//! The adoption path for a downstream user with real hardware designs:
//! point the tool at an `.aag`/`.aig` file, pick an engine and a bound,
//! get an HWMCC-style verdict and stimulus witness.
//!
//! ```text
//! sebmc <circuit.aag|circuit.aig> [--engine jsat|unroll|qbf-linear|qbf-squaring|k-induction]
//!       [--bound K] [--within] [--timeout-ms N] [--mem-mb N] [--quiet]
//! ```
//!
//! Output follows the HWMCC witness convention:
//! * `1` — the bad state is reachable, followed by `b0`, the initial
//!   latch values, one input-vector line per step, and `.`;
//! * `0` — not reachable up to the bound (or proven safe for every
//!   bound by k-induction);
//! * `2` — unknown (budget exhausted / unsupported bound).
//!
//! Exit code: 10 for reachable, 20 for unreachable/safe, 0 for unknown
//! (matching common model-checker conventions).

use std::process::ExitCode;
use std::time::Duration;

use sebmc_repro::aiger;
use sebmc_repro::bmc::{
    k_induction, BmcResult, BoundedChecker, EngineLimits, InductionResult, JSat, QbfBackend,
    QbfLinear, QbfSquaring, Semantics, UnrollSat,
};
use sebmc_repro::model::{Model, Trace};

struct Options {
    path: String,
    engine: String,
    bound: usize,
    semantics: Semantics,
    limits: EngineLimits,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sebmc <circuit.aag|circuit.aig> \
         [--engine jsat|unroll|qbf-linear|qbf-squaring|k-induction] \
         [--bound K] [--within] [--timeout-ms N] [--mem-mb N] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut engine = "jsat".to_string();
    let mut bound = 20usize;
    let mut semantics = Semantics::Exactly;
    let mut timeout_ms = None;
    let mut mem_mb = None;
    let mut quiet = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => engine = args.next().unwrap_or_else(|| usage()),
            "--bound" => {
                bound = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--within" => semantics = Semantics::Within,
            "--timeout-ms" => timeout_ms = args.next().and_then(|v| v.parse().ok()),
            "--mem-mb" => mem_mb = args.next().and_then(|v| v.parse().ok()),
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    Options {
        path: path.unwrap_or_else(|| usage()),
        engine,
        bound,
        semantics,
        limits: EngineLimits {
            timeout: timeout_ms.map(Duration::from_millis),
            max_formula_lits: mem_mb.map(|mb: usize| mb * 1024 * 1024 / 4),
        },
        quiet,
    }
}

/// Prints an HWMCC-style stimulus witness.
fn print_witness(model: &Model, trace: &Trace) {
    println!("1");
    println!("b0");
    // Initial latch values.
    let init: String = trace.states[0]
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    println!("{init}");
    for step in &trace.inputs {
        let line: String = step.iter().map(|&b| if b { '1' } else { '0' }).collect();
        println!("{line}");
    }
    println!(".");
    debug_assert_eq!(model.check_trace(trace), Ok(()));
}

fn main() -> ExitCode {
    let opts = parse_args();
    let bytes = match std::fs::read(&opts.path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("sebmc: cannot read '{}': {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let file = match aiger::parse_auto(&bytes) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sebmc: {e}");
            return ExitCode::from(2);
        }
    };
    let model = match aiger::aiger_to_model(&file, &opts.path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("sebmc: {e}");
            return ExitCode::from(2);
        }
    };
    if !opts.quiet {
        eprintln!(
            "sebmc: '{}' — {} latches, {} inputs, {} ANDs; engine {}, bound {} ({})",
            opts.path,
            model.num_state_vars(),
            model.num_inputs(),
            file.ands.len(),
            opts.engine,
            opts.bound,
            opts.semantics
        );
    }

    if opts.engine == "k-induction" {
        return match k_induction(&model, opts.bound, &opts.limits) {
            InductionResult::Falsified { cex } => {
                print_witness(&model, &cex);
                ExitCode::from(10)
            }
            InductionResult::Proved { k } => {
                if !opts.quiet {
                    eprintln!("sebmc: proved safe at induction depth {k}");
                }
                println!("0");
                ExitCode::from(20)
            }
            InductionResult::Exhausted { max_depth } => {
                if !opts.quiet {
                    eprintln!("sebmc: inconclusive up to depth {max_depth}");
                }
                println!("2");
                ExitCode::SUCCESS
            }
            InductionResult::Unknown { reason } => {
                if !opts.quiet {
                    eprintln!("sebmc: {reason}");
                }
                println!("2");
                ExitCode::SUCCESS
            }
        };
    }

    let mut engine: Box<dyn BoundedChecker> = match opts.engine.as_str() {
        "jsat" => Box::new(JSat::with_limits(opts.limits.clone())),
        "unroll" => Box::new(UnrollSat::with_limits(opts.limits.clone())),
        "qbf-linear" => Box::new(QbfLinear::with_limits(
            QbfBackend::Qdpll,
            opts.limits.clone(),
        )),
        "qbf-squaring" => Box::new(QbfSquaring::with_limits(
            QbfBackend::Expansion,
            opts.limits.clone(),
        )),
        other => {
            eprintln!("sebmc: unknown engine '{other}'");
            return ExitCode::from(2);
        }
    };
    let out = engine.check(&model, opts.bound, opts.semantics);
    if !opts.quiet {
        eprintln!(
            "sebmc: {} in {:?} (formula {} lits, peak {} lits, effort {})",
            out.result,
            out.stats.duration,
            out.stats.encode_lits,
            out.stats.peak_formula_lits,
            out.stats.solver_effort
        );
    }
    match out.result {
        BmcResult::Reachable(Some(trace)) => {
            print_witness(&model, &trace);
            ExitCode::from(10)
        }
        BmcResult::Reachable(None) => {
            println!("1");
            ExitCode::from(10)
        }
        BmcResult::Unreachable => {
            println!("0");
            ExitCode::from(20)
        }
        BmcResult::Unknown(_) => {
            println!("2");
            ExitCode::SUCCESS
        }
    }
}
