//! `sebmc` — command-line bounded model checker over AIGER circuits.
//!
//! The adoption path for a downstream user with real hardware designs:
//! point the tool at an `.aag`/`.aig` file, pick an engine and a bound,
//! get an HWMCC-style verdict and stimulus witness.
//!
//! ```text
//! sebmc <circuit.aag|circuit.aig> [--engine jsat|unroll|qbf-linear|qbf-squaring|k-induction]
//!       [--bound K] [--deepen] [--within] [--timeout-ms N] [--mem-mb N]
//!       [--certify] [--proof-out FILE] [--no-reduce] [--fault-plan PLAN]
//!       [--json] [--quiet]
//! sebmc batch [jobs.txt] [--suite small|paper] [--engines LIST] [--bound K]
//!       [--workers N] [--timeout-ms N] [--mem-mb N] [--max-job-mb N]
//!       [--max-total-mb N] [--retries N] [--backoff-ms N]
//!       [--attempt-timeout-ms N] [--deadline-ms N] [--fault-plan PLAN]
//!       [--within] [--certify] [--witness-dir DIR] [--proof-out DIR]
//!       [--no-reduce] [--json] [--quiet]
//! sebmc analyze <circuit.aag|circuit.aig|suite:NAME> [--json]
//! sebmc serve [--addr HOST:PORT] [--workers N] [--cache-mb N] [--no-cache]
//!       [--max-queue N] [--max-job-mb N] [--max-total-mb N] [--aging-ms N]
//!       [--witness-dir DIR] [--proof-out DIR] [--trace-out FILE] [--quiet]
//! sebmc client --addr HOST:PORT [JOBLINE ...] [--ping] [--stats]
//!       [--shutdown graceful|now] [--timeout-s N] [--quiet]
//! ```
//!
//! `sebmc batch` runs a whole *job list* on the multi-worker checking
//! service (`sebmc-service`): each job deepens one model through
//! bounds `0..=K` on one engine session, or — with several engines —
//! races the live sessions per bound (portfolio-level deepening).
//! Jobs come from a job file (see `sebmc_service::parse_job_file` for
//! the format) or from the built-in model suite (`--suite`, the
//! default when no file is given). With a job file, `--timeout-ms` and
//! `--mem-mb` are defaults for lines that set no limit of their own,
//! and `--within` applies to every job. `--json` prints the aggregated
//! `ServiceReport`; the text output is one line per job plus a
//! summary. Exit code: 0 when every job got a verdict or the sweep was
//! clean, 1 when any job ended `Unknown`, 2 for usage errors.
//!
//! * `--bound K` — the bound to check (with `--deepen`: the largest).
//! * `--deepen` — open **one** engine session and check bounds
//!   `0..=K`, reusing solver state between bounds, reporting the first
//!   reachable bound (ignored for `k-induction`, which deepens by
//!   construction).
//! * `--timeout-ms N` / `--mem-mb N` — the session budget: wall clock
//!   and a byte-based cap on the solver's clause database (`N` MiB).
//!   Malformed numbers exit 2 instead of silently running unlimited.
//! * `--certify` — machine-check every decided bound: SAT-backed
//!   engines stream a binary-DRAT proof through the built-in
//!   bounded-memory checker (Unsat bounds), witnesses are replayed
//!   through the model simulator (Sat bounds), and the verdict carries
//!   a certificate summary (`certificate` in `--json`, including the
//!   exact `proof_bytes`). In batch mode a *decided but uncertified*
//!   job fails the run (exit 1) — a certificate is part of the
//!   contract once requested.
//! * `--witness-dir DIR` (batch) — stream each reachable job's witness
//!   to `DIR/jobNNN_<name>.wit` (HWMCC stimulus format); the report
//!   keeps the path and length instead of the full trace.
//! * `--proof-out` — export the binary-DRAT proof stream. Single mode
//!   takes a *file* path and keeps it only when the verdict is
//!   `Unreachable` (otherwise the partial stream is removed); batch
//!   mode takes a *directory* and keeps `DIR/jobNNN_<name>.drat` for
//!   every single-engine job that sweeps to `Unreachable` (portfolio
//!   jobs skip export). Composes with `--certify`: the same stream is
//!   checked on the fly *and* written out.
//! * `--retries N` / `--backoff-ms N` / `--attempt-timeout-ms N` /
//!   `--deadline-ms N` (batch) — the fault-tolerance policy applied to
//!   every job: up to `N` retries after a crashed/stalled attempt
//!   (exponential backoff from `--backoff-ms`, deterministic jitter),
//!   a per-attempt wall-clock cap, and a whole-job deadline. Retries
//!   resume at the first undecided bound and run under whatever budget
//!   the earlier attempts left over.
//! * `--max-total-mb N` (batch) — aggregate memory budget across all
//!   running jobs; jobs that don't fit are deferred, then downgraded
//!   (portfolio → first engine), and a stalled queue sheds the
//!   youngest running job (`Unknown("shed: memory pressure")`).
//! * `--fault-plan PLAN` — deterministic fault injection for drills
//!   and tests (also read from `SEBMC_FAULT_PLAN` when the flag is
//!   absent). `PLAN` is `seed:<u64>` or a comma list of
//!   `kind@site:hit[:ms]`, e.g. `panic@engine:3,delay@solver:100:20`;
//!   sites are `solver|engine|service`, kinds
//!   `panic|delay|cancel|oom`. In batch mode every job gets its own
//!   fresh copy of the plan (independent hit counters).
//! * `--no-reduce` — skip the static model reduction
//!   (cone-of-influence, constant-latch sweeping, unused-input
//!   elimination) that otherwise runs before any engine encodes
//!   anything. With reduction on, witnesses are lifted back to the
//!   original circuit's variable order and the run stats report
//!   `latches_swept`/`coi_latches`/`inputs_removed`.
//! * `--json` — print one JSON object (verdict, bound, engine, run
//!   stats including `peak_formula_bytes` and `peak_proof_bytes`) on
//!   stdout instead of the HWMCC text output.
//!
//! `sebmc analyze` prints the static-analysis diagnostics report for
//! one circuit (or built-in suite model, `suite:<name>`) without
//! solving anything: per-root cone-of-influence sizes, constant
//! latches with their values, unused inputs, the latch fan-in
//! histogram and the transition-cone size before/after reduction.
//!
//! `sebmc serve` runs the checking service as an always-on daemon on a
//! TCP socket, speaking the line-delimited JSON protocol of
//! `docs/protocol.md`: clients submit jobs (the `JobSpec` JSON
//! encoding), the scheduler orders them by priority/deadline/fairness
//! with aging, decided verdicts land in a result cache (default
//! 64 MiB, `--no-cache` to disable) so duplicate submissions are
//! answered without solving, and `--max-queue` sheds overload with a
//! clean protocol error instead of queueing unboundedly. The first
//! stdout line is `sebmc: listening on <addr>` (scrape it when binding
//! port 0); the last is the run-summary JSON, printed after a client
//! sends `{"op":"shutdown"}` and the drain completes.
//!
//! `sebmc client` drives a running daemon: each positional argument is
//! one job-file line (same grammar as `sebmc batch` job files —
//! `suite:` models resolve and AIGER paths are read *on the server*),
//! submitted in order; every report is printed as one JSON line on
//! stdout as it arrives. `--ping` round-trips a health check first,
//! `--shutdown graceful|now` asks the daemon to stop after the
//! reports are in. Exit code: 0 when every job decided, 1 when any
//! verdict was `unknown` or a submission was refused, 2 for usage or
//! protocol errors.
//!
//! Output (without `--json`) follows the HWMCC witness convention:
//! * `1` — the bad state is reachable, followed by `b0`, the initial
//!   latch values, one input-vector line per step, and `.`;
//! * `0` — not reachable up to the bound (or proven safe for every
//!   bound by k-induction);
//! * `2` — unknown (budget exhausted / unsupported bound).
//!
//! Exit code: 10 for reachable, 20 for unreachable/safe, 0 for unknown
//! (matching common model-checker conventions), 2 for usage errors.

use std::process::ExitCode;
use std::time::Duration;

use sebmc_repro::aiger;
use sebmc_repro::bmc::{
    k_induction_run, BmcOutcome, BmcResult, Budget, Certificate, Engine, InductionResult, JSat,
    QbfBackend, QbfLinear, QbfSquaring, RunStats, Semantics, UnrollSat,
};
use sebmc_repro::logic::fault::FaultPlan;
use sebmc_repro::logic::json::Json;
use sebmc_repro::model::{Model, Trace};
use sebmc_repro::service::{
    cert_json, json_escape, parse_job_file, serve_on, stats_json, suite_jobs, CheckService,
    EngineKind, JobSpec, ServeOptions, ServiceConfig, WireClient,
};

struct Options {
    path: String,
    engine: String,
    bound: usize,
    deepen: bool,
    semantics: Semantics,
    budget: Budget,
    json: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sebmc <circuit.aag|circuit.aig> \
         [--engine jsat|unroll|qbf-linear|qbf-squaring|k-induction] \
         [--bound K] [--deepen] [--within] [--timeout-ms N] [--mem-mb N] \
         [--certify] [--proof-out FILE] [--no-reduce] [--fault-plan PLAN] \
         [--json] [--quiet]\n\
       sebmc analyze <circuit.aag|circuit.aig|suite:NAME> [--json]"
    );
    std::process::exit(2);
}

/// Parses a `--fault-plan` value (`seed:<u64>` or `kind@site:hit[:ms]`
/// commas); malformed plans are a usage error, not a silent no-op.
fn parse_fault_plan(spec: &str) -> FaultPlan {
    spec.parse().unwrap_or_else(|e| {
        eprintln!("sebmc: bad --fault-plan '{spec}': {e}");
        std::process::exit(2);
    })
}

/// The fault plan from `--fault-plan`, falling back to the
/// `SEBMC_FAULT_PLAN` environment variable (so drills can be switched
/// on without touching the command line).
fn effective_fault_plan(flag: Option<String>) -> FaultPlan {
    match flag.or_else(|| std::env::var("SEBMC_FAULT_PLAN").ok()) {
        Some(spec) if !spec.trim().is_empty() => parse_fault_plan(spec.trim()),
        _ => FaultPlan::none(),
    }
}

/// Parses the value of `--{flag}` as an integer; malformed or missing
/// values are a usage error (exit 2), never a silent "unlimited".
fn parse_num(flag: &str, value: Option<String>) -> u64 {
    let v = value.unwrap_or_else(|| {
        eprintln!("sebmc: --{flag} expects a value");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("sebmc: --{flag} expects a non-negative integer, got '{v}'");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut engine = "jsat".to_string();
    let mut bound = 20usize;
    let mut deepen = false;
    let mut semantics = Semantics::Exactly;
    let mut timeout_ms = None;
    let mut mem_mb = None;
    let mut certify = false;
    let mut proof_out: Option<String> = None;
    let mut fault_plan: Option<String> = None;
    let mut reduce = true;
    let mut json = false;
    let mut quiet = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => engine = args.next().unwrap_or_else(|| usage()),
            "--bound" => bound = parse_num("bound", args.next()) as usize,
            "--deepen" => deepen = true,
            "--within" => semantics = Semantics::Within,
            "--timeout-ms" => timeout_ms = Some(parse_num("timeout-ms", args.next())),
            "--mem-mb" => mem_mb = Some(parse_num("mem-mb", args.next())),
            "--certify" => certify = true,
            "--no-reduce" => reduce = false,
            "--proof-out" => proof_out = Some(args.next().unwrap_or_else(|| usage())),
            "--fault-plan" => fault_plan = Some(args.next().unwrap_or_else(|| usage())),
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    Options {
        path: path.unwrap_or_else(|| usage()),
        engine,
        bound,
        deepen,
        semantics,
        budget: Budget {
            timeout: timeout_ms.map(Duration::from_millis),
            // Byte-based cap against the solver's exact clause-arena
            // accounting (headers included).
            max_formula_bytes: mem_mb.map(|mb| mb as usize * 1024 * 1024),
            certify,
            proof_out: proof_out.map(Into::into),
            fault: effective_fault_plan(fault_plan),
            reduce,
            ..Budget::default()
        },
        json,
        quiet,
    }
}

/// Prints an HWMCC-style stimulus witness (the same rendering the
/// service's `--witness-dir` files use).
fn print_witness(model: &Model, trace: &Trace) {
    print!("{}", trace.to_hwmcc());
    debug_assert_eq!(model.check_trace(trace), Ok(()));
}

/// One JSON object for machine consumers: verdict, bound, engine, the
/// full `RunStats` (cumulative over the session for `--deepen`) and —
/// under `--certify` — the certificate summary. The `stats` and
/// `certificate` objects share their schema with the batch
/// `ServiceReport` via [`stats_json`]/[`cert_json`].
fn print_json(
    engine: &str,
    semantics: Semantics,
    verdict: &str,
    reason: Option<&str>,
    bound: Option<usize>,
    stats: &RunStats,
    cert: Option<&Certificate>,
) {
    let bound_s = bound.map_or("null".into(), |b| b.to_string());
    let reason_s = reason.map_or("null".into(), |r| format!("\"{}\"", json_escape(r)));
    let cert_s = cert.map_or("null".into(), cert_json);
    println!(
        "{{\"verdict\":\"{}\",\"reason\":{},\"bound\":{},\"engine\":\"{}\",\"semantics\":\"{}\",\
         \"certificate\":{},\"stats\":{}}}",
        json_escape(verdict),
        reason_s,
        bound_s,
        json_escape(engine),
        semantics,
        cert_s,
        stats_json(stats),
    );
}

/// Single-mode `--proof-out` retention: the exported DRAT stream is a
/// refutation only when the verdict is `Unreachable`; anything else
/// leaves no partial proof file behind.
fn retain_proof(opts: &Options, result: &BmcResult) {
    let Some(p) = &opts.budget.proof_out else {
        return;
    };
    if result.is_unreachable() {
        if !opts.quiet {
            eprintln!("sebmc: proof written to {}", p.display());
        }
    } else {
        let _ = std::fs::remove_file(p);
    }
}

fn exit_for(result: &BmcResult) -> ExitCode {
    match result {
        BmcResult::Reachable(_) => ExitCode::from(10),
        BmcResult::Unreachable => ExitCode::from(20),
        BmcResult::Unknown(_) => ExitCode::SUCCESS,
    }
}

/// Reports one engine outcome in the selected output format. `cert`
/// is the session-cumulative certificate (folded across bounds under
/// `--deepen`).
fn report(
    opts: &Options,
    model: &Model,
    bound: usize,
    out: &BmcOutcome,
    total: &RunStats,
    cert: Option<&Certificate>,
) -> ExitCode {
    if !opts.quiet {
        eprintln!(
            "sebmc: {} in {:?} (formula {} lits, peak {} B, effort {})",
            out.result,
            total.duration,
            total.encode_lits,
            total.peak_formula_bytes,
            total.solver_effort
        );
        if let Some(c) = cert {
            eprintln!(
                "sebmc: certificate: {} ({}/{} bounds, {} lemmas checked, {} proof B)",
                if c.fully_certified() {
                    "verified"
                } else {
                    "NOT fully certified"
                },
                c.bounds_certified,
                c.bounds_attempted,
                c.lemmas_checked,
                c.proof_bytes
            );
        } else if opts.budget.certify {
            eprintln!("sebmc: certificate: none (engine has no proof support)");
        }
    }
    if opts.json {
        let (verdict, reason) = match &out.result {
            BmcResult::Reachable(_) => ("reachable", None),
            BmcResult::Unreachable => ("unreachable", None),
            BmcResult::Unknown(why) => ("unknown", Some(why.as_str())),
        };
        let decided_bound = match &out.result {
            BmcResult::Unknown(_) => None,
            _ => Some(bound),
        };
        print_json(
            &opts.engine,
            opts.semantics,
            verdict,
            reason,
            decided_bound,
            total,
            cert,
        );
        return exit_for(&out.result);
    }
    match &out.result {
        BmcResult::Reachable(Some(trace)) => print_witness(model, trace),
        BmcResult::Reachable(None) => println!("1"),
        BmcResult::Unreachable => println!("0"),
        BmcResult::Unknown(_) => println!("2"),
    }
    exit_for(&out.result)
}

fn run_k_induction(opts: &Options, model: &Model) -> ExitCode {
    let run = k_induction_run(model, opts.bound, &opts.budget);
    let stats = run.stats;
    let (result, detail): (BmcResult, String) = match run.result {
        InductionResult::Falsified { cex } => {
            let len = cex.len();
            if opts.json {
                print_json(
                    "k-induction",
                    opts.semantics,
                    "reachable",
                    None,
                    Some(len),
                    &stats,
                    None,
                );
            } else {
                print_witness(model, &cex);
            }
            return ExitCode::from(10);
        }
        InductionResult::Proved { k } => (
            BmcResult::Unreachable,
            format!("proved safe at induction depth {k}"),
        ),
        InductionResult::Exhausted { max_depth } => (
            BmcResult::Unknown(format!("inconclusive up to depth {max_depth}")),
            format!("inconclusive up to depth {max_depth}"),
        ),
        InductionResult::Unknown { reason } => (BmcResult::Unknown(reason.clone()), reason),
    };
    if !opts.quiet {
        eprintln!("sebmc: {detail}");
    }
    if opts.json {
        let (verdict, reason) = match &result {
            BmcResult::Unreachable => ("unreachable", Some(detail.as_str())),
            _ => ("unknown", Some(detail.as_str())),
        };
        print_json(
            "k-induction",
            opts.semantics,
            verdict,
            reason,
            None,
            &stats,
            None,
        );
    } else {
        match &result {
            BmcResult::Unreachable => println!("0"),
            _ => println!("2"),
        }
    }
    exit_for(&result)
}

fn batch_usage() -> ! {
    eprintln!(
        "usage: sebmc batch [jobs.txt] [--suite small|paper] [--engines LIST] \
         [--bound K] [--workers N] [--timeout-ms N] [--mem-mb N] [--max-job-mb N] \
         [--max-total-mb N] [--retries N] [--backoff-ms N] [--attempt-timeout-ms N] \
         [--deadline-ms N] [--fault-plan PLAN] [--within] [--certify] \
         [--witness-dir DIR] [--proof-out DIR] [--no-reduce] [--json] [--quiet]"
    );
    std::process::exit(2);
}

/// `sebmc batch`: drain a job list on the multi-worker checking
/// service and report the aggregate.
fn run_batch(args: Vec<String>) -> ExitCode {
    let mut file: Option<String> = None;
    let mut suite: Option<String> = None;
    let mut engines: Option<String> = None;
    let mut bound: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut mem_mb: Option<u64> = None;
    let mut max_job_mb: Option<u64> = None;
    let mut max_total_mb: Option<u64> = None;
    let mut retries: Option<u32> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut attempt_timeout_ms: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut fault_plan: Option<String> = None;
    let mut semantics = Semantics::Exactly;
    let mut certify = false;
    let mut reduce = true;
    let mut witness_dir: Option<String> = None;
    let mut proof_dir: Option<String> = None;
    let mut json = false;
    let mut quiet = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => suite = Some(it.next().unwrap_or_else(|| batch_usage())),
            "--engines" => engines = Some(it.next().unwrap_or_else(|| batch_usage())),
            "--bound" => bound = Some(parse_num("bound", it.next()) as usize),
            "--workers" => workers = Some(parse_num("workers", it.next()) as usize),
            "--timeout-ms" => timeout_ms = Some(parse_num("timeout-ms", it.next())),
            "--mem-mb" => mem_mb = Some(parse_num("mem-mb", it.next())),
            "--max-job-mb" => max_job_mb = Some(parse_num("max-job-mb", it.next())),
            "--max-total-mb" => max_total_mb = Some(parse_num("max-total-mb", it.next())),
            "--retries" => retries = Some(parse_num("retries", it.next()) as u32),
            "--backoff-ms" => backoff_ms = Some(parse_num("backoff-ms", it.next())),
            "--attempt-timeout-ms" => {
                attempt_timeout_ms = Some(parse_num("attempt-timeout-ms", it.next()));
            }
            "--deadline-ms" => deadline_ms = Some(parse_num("deadline-ms", it.next())),
            "--fault-plan" => fault_plan = Some(it.next().unwrap_or_else(|| batch_usage())),
            "--within" => semantics = Semantics::Within,
            "--certify" => certify = true,
            "--no-reduce" => reduce = false,
            "--witness-dir" => witness_dir = Some(it.next().unwrap_or_else(|| batch_usage())),
            "--proof-out" => proof_dir = Some(it.next().unwrap_or_else(|| batch_usage())),
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => batch_usage(),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            _ => batch_usage(),
        }
    }
    let fault = effective_fault_plan(fault_plan);
    let jobs: Vec<sebmc_repro::service::Job> = if let Some(path) = &file {
        // Jobs-file lines carry their own models, engines and bounds;
        // silently ignoring the suite flags would mislead.
        if suite.is_some() || engines.is_some() || bound.is_some() {
            eprintln!(
                "sebmc: --suite/--engines/--bound configure the built-in suite \
                 and cannot be combined with a job file"
            );
            return ExitCode::from(2);
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sebmc: cannot read job file '{path}': {e}");
                return ExitCode::from(2);
            }
        };
        match parse_job_file(&text) {
            Ok(jobs) => jobs
                .into_iter()
                .map(|mut j| {
                    // CLI budget flags are *defaults* for lines that
                    // set no limit of their own; --within applies to
                    // every job.
                    if j.budget.timeout.is_none() {
                        j.budget.timeout = timeout_ms.map(Duration::from_millis);
                    }
                    if j.budget.max_formula_bytes.is_none() {
                        j.budget.max_formula_bytes = mem_mb.map(|mb| mb as usize * 1024 * 1024);
                    }
                    if semantics == Semantics::Within {
                        j.semantics = Semantics::Within;
                    }
                    // --certify is a floor, not a default: it switches
                    // certification on for every job of the batch.
                    j.budget.certify |= certify;
                    j
                })
                .collect(),
            Err(e) => {
                eprintln!("sebmc: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let kinds = match EngineKind::parse_list(engines.as_deref().unwrap_or("jsat,unroll")) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("sebmc: {e}");
                return ExitCode::from(2);
            }
        };
        let small = match suite.as_deref().unwrap_or("small") {
            "small" => true,
            "paper" => false,
            other => {
                eprintln!("sebmc: unknown suite '{other}' (expected small|paper)");
                return ExitCode::from(2);
            }
        };
        let budget = Budget {
            timeout: timeout_ms.map(Duration::from_millis),
            max_formula_bytes: mem_mb.map(|mb| mb as usize * 1024 * 1024),
            certify,
            ..Budget::default()
        };
        suite_jobs(small, &kinds, bound.unwrap_or(6), &budget)
            .into_iter()
            .map(|j| j.with_semantics(semantics))
            .collect()
    };
    let mut jobs = jobs;
    for (i, j) in jobs.iter_mut().enumerate() {
        // CLI fault-tolerance flags apply per field, to every job of
        // the batch; jitter is seeded per job id so backoff schedules
        // are deterministic but decorrelated across the batch.
        if let Some(r) = retries {
            j.retry.max_attempts = r.saturating_add(1);
        }
        if let Some(ms) = backoff_ms {
            j.retry.backoff = Duration::from_millis(ms);
        }
        if let Some(ms) = attempt_timeout_ms {
            j.retry.attempt_timeout = Some(Duration::from_millis(ms));
        }
        if let Some(ms) = deadline_ms {
            j.retry.job_deadline = Some(Duration::from_millis(ms));
        }
        j.retry.jitter_seed ^= i as u64;
        // --no-reduce overrides every job: the flag exists to compare
        // against the unreduced oracle, which only works batch-wide.
        if !reduce {
            j.budget.reduce = false;
        }
        // Each job arms its own copy of the plan: independent hit
        // counters, so "panic at the 3rd engine call" means the 3rd
        // call of *that job*, whatever the scheduling order.
        if !fault.is_none() {
            j.budget.fault = fault.fresh_copy();
        }
    }
    let mut config = match workers {
        Some(w) => ServiceConfig::with_workers(w),
        None => ServiceConfig::default(),
    };
    config.max_job_bytes = max_job_mb.map(|mb| mb as usize * 1024 * 1024);
    config.max_total_bytes = max_total_mb.map(|mb| mb as usize * 1024 * 1024);
    config.witness_dir = witness_dir.map(Into::into);
    config.proof_dir = proof_dir.map(Into::into);
    if !quiet {
        eprintln!(
            "sebmc: batch of {} jobs on {} workers",
            jobs.len(),
            config.workers.max(1)
        );
    }
    // The certificate contract holds however certification was
    // requested — the --certify flag or a job-file `certify` option.
    let certify = certify || jobs.iter().any(|j| j.budget.certify);
    let mut svc = CheckService::new(config);
    for job in jobs {
        svc.submit(job);
    }
    let report = svc.run();
    if !quiet {
        for j in &report.jobs {
            let (verdict, reason) = j.verdict_parts();
            eprintln!(
                "sebmc: [{:>3}] {:<20} {:<12} {} wait {:?} solve {:?} effort {}{}",
                j.job_id,
                j.name,
                verdict,
                match (j.bound, reason) {
                    (Some(b), _) => format!("bound {b}"),
                    (None, Some(r)) => format!("({r})"),
                    (None, None) => format!("0..={} swept", j.bounds_checked.saturating_sub(1)),
                },
                j.queue_wait,
                j.solve_time,
                j.stats.solver_effort,
                if j.attempts > 1 || j.quarantined {
                    format!(
                        " [attempts {}{}]",
                        j.attempts,
                        if j.quarantined { ", quarantined" } else { "" }
                    )
                } else {
                    String::new()
                },
            );
        }
        eprintln!(
            "sebmc: {} reachable / {} unreachable / {} unknown in {:?} ({:.2} jobs/s)",
            report.reachable,
            report.unreachable,
            report.unknown,
            report.wall,
            report.jobs_per_sec()
        );
        if report.jobs_retried
            + report.quarantined.len()
            + report.jobs_shed
            + report.jobs_downgraded
            > 0
        {
            eprintln!(
                "sebmc: fault tolerance: {} retried, {} quarantined, {} shed, {} downgraded",
                report.jobs_retried,
                report.quarantined.len(),
                report.jobs_shed,
                report.jobs_downgraded
            );
        }
        if certify {
            eprintln!(
                "sebmc: certified {}/{} decided jobs ({} proof B checked)",
                report.jobs_certified,
                report.jobs.len() - report.unknown,
                report.certificate.as_ref().map_or(0, |c| c.proof_bytes)
            );
        }
    }
    if json {
        println!("{}", report.to_json());
    }
    // Once certification is requested, a decided job without a
    // fully-certified certificate is a failure, exactly like an
    // Unknown verdict: the claim was made but not machine-checked.
    let uncertified = if certify {
        report
            .jobs
            .iter()
            .filter(|j| {
                !j.verdict.is_unknown()
                    && !j
                        .certificate
                        .as_ref()
                        .is_some_and(Certificate::fully_certified)
            })
            .count()
    } else {
        0
    };
    if uncertified > 0 && !quiet {
        eprintln!("sebmc: {uncertified} decided job(s) lack a full certificate");
    }
    if report.unknown > 0 || uncertified > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: sebmc serve [--addr HOST:PORT] [--workers N] [--cache-mb N] \
         [--no-cache] [--max-queue N] [--max-job-mb N] [--max-total-mb N] \
         [--aging-ms N] [--witness-dir DIR] [--proof-out DIR] \
         [--trace-out FILE] [--quiet]"
    );
    std::process::exit(2);
}

/// `sebmc serve`: the always-on checking daemon (see the module docs).
fn run_serve(args: Vec<String>) -> ExitCode {
    let mut addr = "127.0.0.1:3935".to_string();
    let mut workers: Option<usize> = None;
    let mut cache_mb: u64 = 64;
    let mut no_cache = false;
    let mut max_queue: Option<usize> = Some(1024);
    let mut max_job_mb: Option<u64> = None;
    let mut max_total_mb: Option<u64> = None;
    let mut aging_ms: Option<u64> = None;
    let mut witness_dir: Option<String> = None;
    let mut proof_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut quiet = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().unwrap_or_else(|| serve_usage()),
            "--workers" => workers = Some(parse_num("workers", it.next()) as usize),
            "--cache-mb" => cache_mb = parse_num("cache-mb", it.next()),
            "--no-cache" => no_cache = true,
            "--max-queue" => max_queue = Some(parse_num("max-queue", it.next()) as usize),
            "--max-job-mb" => max_job_mb = Some(parse_num("max-job-mb", it.next())),
            "--max-total-mb" => max_total_mb = Some(parse_num("max-total-mb", it.next())),
            "--aging-ms" => aging_ms = Some(parse_num("aging-ms", it.next())),
            "--witness-dir" => witness_dir = Some(it.next().unwrap_or_else(|| serve_usage())),
            "--proof-out" => proof_dir = Some(it.next().unwrap_or_else(|| serve_usage())),
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| serve_usage())),
            "--quiet" => quiet = true,
            "--help" | "-h" => serve_usage(),
            _ => serve_usage(),
        }
    }
    let listener = match std::net::TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sebmc: cannot bind '{addr}': {e}");
            return ExitCode::from(2);
        }
    };
    let local = listener
        .local_addr()
        .map_or_else(|_| addr.clone(), |a| a.to_string());
    let mut config = match workers {
        Some(w) => ServiceConfig::with_workers(w),
        None => ServiceConfig::default(),
    };
    if !no_cache && cache_mb > 0 {
        config.result_cache_bytes = Some(cache_mb as usize * 1024 * 1024);
    }
    config.max_queue_depth = max_queue;
    config.max_job_bytes = max_job_mb.map(|mb| mb as usize * 1024 * 1024);
    config.max_total_bytes = max_total_mb.map(|mb| mb as usize * 1024 * 1024);
    config.witness_dir = witness_dir.map(Into::into);
    config.proof_dir = proof_dir.map(Into::into);
    if let Some(ms) = aging_ms {
        config.priority_aging = Duration::from_millis(ms);
    }
    let telemetry = match &trace_out {
        Some(path) => match sebmc_repro::telemetry::Telemetry::with_trace_file(path.as_ref()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sebmc: cannot open trace file '{path}': {e}");
                return ExitCode::from(2);
            }
        },
        None => sebmc_repro::telemetry::Telemetry::new(),
    };
    config = config.with_telemetry(std::sync::Arc::new(telemetry));
    if !quiet {
        eprintln!(
            "sebmc: serving on {local} with {} workers (cache {})",
            config.workers.max(1),
            config
                .result_cache_bytes
                .map_or("off".to_string(), |b| format!("{} MiB", b / (1024 * 1024)))
        );
    }
    // The scrape line: CI and scripts bind port 0 and read the real
    // address from here.
    println!("sebmc: listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match serve_on(listener, config, ServeOptions::default()) {
        Ok(summary) => {
            println!("{}", summary.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sebmc: serve: {e}");
            ExitCode::from(1)
        }
    }
}

fn client_usage() -> ! {
    eprintln!(
        "usage: sebmc client --addr HOST:PORT [JOBLINE ...] [--ping] [--stats] \
         [--shutdown graceful|now] [--timeout-s N] [--quiet]\n\
         each JOBLINE is one job-file line, e.g. \
         'suite:token_ring4 jsat,unroll 6 priority=9'"
    );
    std::process::exit(2);
}

/// `sebmc client`: submit job lines to a running daemon and print the
/// report JSON lines as they arrive (see the module docs).
fn run_client(args: Vec<String>) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut lines: Vec<String> = Vec::new();
    let mut ping = false;
    let mut stats = false;
    let mut shutdown: Option<String> = None;
    let mut timeout_s: u64 = 600;
    let mut quiet = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().unwrap_or_else(|| client_usage())),
            "--ping" => ping = true,
            "--stats" => stats = true,
            "--shutdown" => {
                let mode = it.next().unwrap_or_else(|| client_usage());
                if mode != "graceful" && mode != "now" {
                    eprintln!("sebmc: --shutdown expects graceful|now, got '{mode}'");
                    return ExitCode::from(2);
                }
                shutdown = Some(mode);
            }
            "--timeout-s" => timeout_s = parse_num("timeout-s", it.next()),
            "--quiet" => quiet = true,
            "--help" | "-h" => client_usage(),
            other if !other.starts_with('-') => lines.push(other.to_string()),
            _ => client_usage(),
        }
    }
    let Some(addr) = addr else { client_usage() };
    let mut wire = match WireClient::connect(&addr) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("sebmc: cannot connect to '{addr}': {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        eprintln!("sebmc: connected to {addr} ({})", wire.hello);
    }
    if ping {
        if let Err(e) = wire.ping() {
            eprintln!("sebmc: ping failed: {e}");
            return ExitCode::from(2);
        }
        if !quiet {
            eprintln!("sebmc: pong");
        }
    }
    let mut refused = false;
    let mut expected = 0usize;
    for line in &lines {
        let spec = match JobSpec::parse_line(line) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sebmc: bad job line '{line}': {e}");
                return ExitCode::from(2);
            }
        };
        match wire.submit(&spec) {
            Err(e) => {
                eprintln!("sebmc: submit failed: {e}");
                return ExitCode::from(2);
            }
            Ok(Err(msg)) => {
                eprintln!("sebmc: submission refused: {msg}");
                refused = true;
            }
            Ok(Ok(id)) => {
                expected += 1;
                if !quiet {
                    eprintln!("sebmc: job {id} accepted");
                }
            }
        }
    }
    let mut unknown = 0usize;
    for _ in 0..expected {
        match wire.next_report(Some(Duration::from_secs(timeout_s))) {
            Err(e) => {
                eprintln!("sebmc: lost connection waiting for reports: {e}");
                return ExitCode::from(2);
            }
            Ok(None) => {
                eprintln!("sebmc: timed out waiting for reports after {timeout_s}s");
                return ExitCode::from(2);
            }
            Ok(Some(job)) => {
                if job.get("verdict").and_then(Json::as_str) == Some("unknown") {
                    unknown += 1;
                }
                println!("{job}");
            }
        }
    }
    if stats {
        match wire.stats() {
            Err(e) => {
                eprintln!("sebmc: stats request failed: {e}");
                return ExitCode::from(2);
            }
            Ok(snapshot) => println!("{snapshot}"),
        }
    }
    if let Some(mode) = shutdown {
        if let Err(e) = wire.shutdown(&mode) {
            eprintln!("sebmc: shutdown request failed: {e}");
            return ExitCode::from(2);
        }
        if !quiet {
            eprintln!("sebmc: server acknowledged {mode} shutdown");
        }
    }
    if refused || unknown > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Loads a model from an AIGER path or a built-in suite name
/// (`suite:<name>`), exiting 2 on failure — shared by `analyze` and
/// potential future subcommands.
fn load_model(spec: &str) -> Model {
    if let Some(name) = spec.strip_prefix("suite:") {
        return sebmc_repro::service::suite_model(name).unwrap_or_else(|| {
            eprintln!("sebmc: no built-in suite model named '{name}'");
            std::process::exit(2);
        });
    }
    let bytes = std::fs::read(spec).unwrap_or_else(|e| {
        eprintln!("sebmc: cannot read '{spec}': {e}");
        std::process::exit(2);
    });
    let file = aiger::parse_auto(&bytes).unwrap_or_else(|e| {
        eprintln!("sebmc: {e}");
        std::process::exit(2);
    });
    aiger::aiger_to_model(&file, spec).unwrap_or_else(|e| {
        eprintln!("sebmc: {e}");
        std::process::exit(2);
    })
}

/// `sebmc analyze`: print the static-analysis diagnostics report for
/// one model, without solving anything. Exit code 0.
fn run_analyze(args: Vec<String>) -> ExitCode {
    let mut spec: Option<String> = None;
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: sebmc analyze <circuit.aag|circuit.aig|suite:NAME> [--json]");
                return ExitCode::from(2);
            }
            other if spec.is_none() && !other.starts_with('-') => spec = Some(other.to_string()),
            other => {
                eprintln!("sebmc: analyze: unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(spec) = spec else {
        eprintln!("usage: sebmc analyze <circuit.aag|circuit.aig|suite:NAME> [--json]");
        return ExitCode::from(2);
    };
    let model = load_model(&spec);
    let analysis = sebmc_repro::analysis::analyze(&model);
    if json {
        println!("{}", analysis.to_json());
    } else {
        print!("{}", analysis.render(&model));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // The `batch` and `analyze` subcommands have their own argument
    // grammars.
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("batch") {
        raw.next();
        return run_batch(raw.collect());
    }
    if raw.peek().map(String::as_str) == Some("analyze") {
        raw.next();
        return run_analyze(raw.collect());
    }
    if raw.peek().map(String::as_str) == Some("serve") {
        raw.next();
        return run_serve(raw.collect());
    }
    if raw.peek().map(String::as_str) == Some("client") {
        raw.next();
        return run_client(raw.collect());
    }
    let mut opts = parse_args();
    let bytes = match std::fs::read(&opts.path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("sebmc: cannot read '{}': {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let file = match aiger::parse_auto(&bytes) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sebmc: {e}");
            return ExitCode::from(2);
        }
    };
    let model = match aiger::aiger_to_model(&file, &opts.path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("sebmc: {e}");
            return ExitCode::from(2);
        }
    };
    if !opts.quiet {
        eprintln!(
            "sebmc: '{}' — {} latches, {} inputs, {} ANDs; engine {}, bound {}{} ({})",
            opts.path,
            model.num_state_vars(),
            model.num_inputs(),
            file.ands.len(),
            opts.engine,
            opts.bound,
            if opts.deepen { " (deepening)" } else { "" },
            opts.semantics
        );
    }

    if opts.engine == "k-induction" {
        if opts.budget.proof_out.take().is_some() && !opts.quiet {
            eprintln!("sebmc: --proof-out is not supported for k-induction; ignoring");
        }
        return run_k_induction(&opts, &model);
    }

    let engine: Box<dyn Engine> = match opts.engine.as_str() {
        "jsat" => Box::new(JSat::default()),
        "unroll" => Box::new(UnrollSat::default()),
        "qbf-linear" => Box::new(QbfLinear::new(QbfBackend::Qdpll)),
        "qbf-squaring" => Box::new(QbfSquaring::new(QbfBackend::Expansion)),
        other => {
            eprintln!("sebmc: unknown engine '{other}'");
            return ExitCode::from(2);
        }
    };

    if opts.deepen {
        // One session, bounds 0..=K: solver state persists per bound,
        // and per-bound certificates fold into one session summary.
        let mut session = engine.start(&model, opts.semantics, opts.budget.clone());
        let mut skipped = 0usize;
        let mut cert: Option<Certificate> = None;
        for k in 0..=opts.bound {
            // An unsupported bound (iterative squaring only checks
            // powers of two) is not a budget failure: keep deepening
            // at the bounds the engine does support.
            if !session.supports_bound(k) {
                skipped += 1;
                continue;
            }
            let out = session.check_bound(k);
            Certificate::fold_into(&mut cert, out.certificate.as_ref());
            match out.result {
                BmcResult::Unreachable => continue,
                _ => {
                    let total = session.cumulative_stats();
                    if !opts.quiet && out.result.is_reachable() {
                        eprintln!("sebmc: first reachable at bound {k}");
                    }
                    retain_proof(&opts, &out.result);
                    return report(&opts, &model, k, &out, &total, cert.as_ref());
                }
            }
        }
        let total = session.cumulative_stats();
        // Skipped (unsupported) bounds were not decided, so a clean
        // sweep with skips is Unknown, not Unreachable.
        let result = if skipped > 0 {
            BmcResult::Unknown(format!(
                "unreachable at every supported bound 0..={}, \
                 but {skipped} unsupported bounds were skipped",
                opts.bound
            ))
        } else {
            BmcResult::Unreachable
        };
        if !opts.quiet {
            eprintln!("sebmc: {result} (deepened 0..={})", opts.bound);
        }
        let out = BmcOutcome::new(result, total.clone());
        retain_proof(&opts, &out.result);
        report(&opts, &model, opts.bound, &out, &total, cert.as_ref())
    } else {
        let mut session = engine.start(&model, opts.semantics, opts.budget.clone());
        let out = session.check_bound(opts.bound);
        let total = session.cumulative_stats();
        retain_proof(&opts, &out.result);
        report(
            &opts,
            &model,
            opts.bound,
            &out,
            &total,
            out.certificate.as_ref(),
        )
    }
}
