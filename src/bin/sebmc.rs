//! `sebmc` — command-line bounded model checker over AIGER circuits.
//!
//! The adoption path for a downstream user with real hardware designs:
//! point the tool at an `.aag`/`.aig` file, pick an engine and a bound,
//! get an HWMCC-style verdict and stimulus witness.
//!
//! ```text
//! sebmc <circuit.aag|circuit.aig> [--engine jsat|unroll|qbf-linear|qbf-squaring|k-induction]
//!       [--bound K] [--deepen] [--within] [--timeout-ms N] [--mem-mb N]
//!       [--json] [--quiet]
//! sebmc batch [jobs.txt] [--suite small|paper] [--engines LIST] [--bound K]
//!       [--workers N] [--timeout-ms N] [--mem-mb N] [--max-job-mb N]
//!       [--within] [--json] [--quiet]
//! ```
//!
//! `sebmc batch` runs a whole *job list* on the multi-worker checking
//! service (`sebmc-service`): each job deepens one model through
//! bounds `0..=K` on one engine session, or — with several engines —
//! races the live sessions per bound (portfolio-level deepening).
//! Jobs come from a job file (see `sebmc_service::parse_job_file` for
//! the format) or from the built-in model suite (`--suite`, the
//! default when no file is given). With a job file, `--timeout-ms` and
//! `--mem-mb` are defaults for lines that set no limit of their own,
//! and `--within` applies to every job. `--json` prints the aggregated
//! `ServiceReport`; the text output is one line per job plus a
//! summary. Exit code: 0 when every job got a verdict or the sweep was
//! clean, 1 when any job ended `Unknown`, 2 for usage errors.
//!
//! * `--bound K` — the bound to check (with `--deepen`: the largest).
//! * `--deepen` — open **one** engine session and check bounds
//!   `0..=K`, reusing solver state between bounds, reporting the first
//!   reachable bound (ignored for `k-induction`, which deepens by
//!   construction).
//! * `--timeout-ms N` / `--mem-mb N` — the session budget: wall clock
//!   and a byte-based cap on the solver's clause database (`N` MiB).
//!   Malformed numbers exit 2 instead of silently running unlimited.
//! * `--json` — print one JSON object (verdict, bound, engine, run
//!   stats including `peak_formula_bytes`) on stdout instead of the
//!   HWMCC text output.
//!
//! Output (without `--json`) follows the HWMCC witness convention:
//! * `1` — the bad state is reachable, followed by `b0`, the initial
//!   latch values, one input-vector line per step, and `.`;
//! * `0` — not reachable up to the bound (or proven safe for every
//!   bound by k-induction);
//! * `2` — unknown (budget exhausted / unsupported bound).
//!
//! Exit code: 10 for reachable, 20 for unreachable/safe, 0 for unknown
//! (matching common model-checker conventions), 2 for usage errors.

use std::process::ExitCode;
use std::time::Duration;

use sebmc_repro::aiger;
use sebmc_repro::bmc::{
    k_induction_run, BmcOutcome, BmcResult, Budget, Engine, InductionResult, JSat, QbfBackend,
    QbfLinear, QbfSquaring, RunStats, Semantics, UnrollSat,
};
use sebmc_repro::model::{Model, Trace};
use sebmc_repro::service::{
    json_escape, parse_job_file, stats_json, suite_jobs, CheckService, EngineKind, ServiceConfig,
};

struct Options {
    path: String,
    engine: String,
    bound: usize,
    deepen: bool,
    semantics: Semantics,
    budget: Budget,
    json: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sebmc <circuit.aag|circuit.aig> \
         [--engine jsat|unroll|qbf-linear|qbf-squaring|k-induction] \
         [--bound K] [--deepen] [--within] [--timeout-ms N] [--mem-mb N] \
         [--json] [--quiet]"
    );
    std::process::exit(2);
}

/// Parses the value of `--{flag}` as an integer; malformed or missing
/// values are a usage error (exit 2), never a silent "unlimited".
fn parse_num(flag: &str, value: Option<String>) -> u64 {
    let v = value.unwrap_or_else(|| {
        eprintln!("sebmc: --{flag} expects a value");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("sebmc: --{flag} expects a non-negative integer, got '{v}'");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut engine = "jsat".to_string();
    let mut bound = 20usize;
    let mut deepen = false;
    let mut semantics = Semantics::Exactly;
    let mut timeout_ms = None;
    let mut mem_mb = None;
    let mut json = false;
    let mut quiet = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => engine = args.next().unwrap_or_else(|| usage()),
            "--bound" => bound = parse_num("bound", args.next()) as usize,
            "--deepen" => deepen = true,
            "--within" => semantics = Semantics::Within,
            "--timeout-ms" => timeout_ms = Some(parse_num("timeout-ms", args.next())),
            "--mem-mb" => mem_mb = Some(parse_num("mem-mb", args.next())),
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    Options {
        path: path.unwrap_or_else(|| usage()),
        engine,
        bound,
        deepen,
        semantics,
        budget: Budget {
            timeout: timeout_ms.map(Duration::from_millis),
            // Byte-based cap against the solver's exact clause-arena
            // accounting (headers included).
            max_formula_bytes: mem_mb.map(|mb| mb as usize * 1024 * 1024),
            ..Budget::default()
        },
        json,
        quiet,
    }
}

/// Prints an HWMCC-style stimulus witness.
fn print_witness(model: &Model, trace: &Trace) {
    println!("1");
    println!("b0");
    // Initial latch values.
    let init: String = trace.states[0]
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    println!("{init}");
    for step in &trace.inputs {
        let line: String = step.iter().map(|&b| if b { '1' } else { '0' }).collect();
        println!("{line}");
    }
    println!(".");
    debug_assert_eq!(model.check_trace(trace), Ok(()));
}

/// One JSON object for machine consumers: verdict, bound, engine and
/// the full `RunStats` (cumulative over the session for `--deepen`).
/// The `stats` object shares its schema with the batch
/// `ServiceReport` via [`stats_json`].
fn print_json(
    engine: &str,
    semantics: Semantics,
    verdict: &str,
    reason: Option<&str>,
    bound: Option<usize>,
    stats: &RunStats,
) {
    let bound_s = bound.map_or("null".into(), |b| b.to_string());
    let reason_s = reason.map_or("null".into(), |r| format!("\"{}\"", json_escape(r)));
    println!(
        "{{\"verdict\":\"{}\",\"reason\":{},\"bound\":{},\"engine\":\"{}\",\"semantics\":\"{}\",\
         \"stats\":{}}}",
        json_escape(verdict),
        reason_s,
        bound_s,
        json_escape(engine),
        semantics,
        stats_json(stats),
    );
}

fn exit_for(result: &BmcResult) -> ExitCode {
    match result {
        BmcResult::Reachable(_) => ExitCode::from(10),
        BmcResult::Unreachable => ExitCode::from(20),
        BmcResult::Unknown(_) => ExitCode::SUCCESS,
    }
}

/// Reports one engine outcome in the selected output format.
fn report(
    opts: &Options,
    model: &Model,
    bound: usize,
    out: &BmcOutcome,
    total: &RunStats,
) -> ExitCode {
    if !opts.quiet {
        eprintln!(
            "sebmc: {} in {:?} (formula {} lits, peak {} B, effort {})",
            out.result,
            total.duration,
            total.encode_lits,
            total.peak_formula_bytes,
            total.solver_effort
        );
    }
    if opts.json {
        let (verdict, reason) = match &out.result {
            BmcResult::Reachable(_) => ("reachable", None),
            BmcResult::Unreachable => ("unreachable", None),
            BmcResult::Unknown(why) => ("unknown", Some(why.as_str())),
        };
        let decided_bound = match &out.result {
            BmcResult::Unknown(_) => None,
            _ => Some(bound),
        };
        print_json(
            &opts.engine,
            opts.semantics,
            verdict,
            reason,
            decided_bound,
            total,
        );
        return exit_for(&out.result);
    }
    match &out.result {
        BmcResult::Reachable(Some(trace)) => print_witness(model, trace),
        BmcResult::Reachable(None) => println!("1"),
        BmcResult::Unreachable => println!("0"),
        BmcResult::Unknown(_) => println!("2"),
    }
    exit_for(&out.result)
}

fn run_k_induction(opts: &Options, model: &Model) -> ExitCode {
    let run = k_induction_run(model, opts.bound, &opts.budget);
    let stats = run.stats;
    let (result, detail): (BmcResult, String) = match run.result {
        InductionResult::Falsified { cex } => {
            let len = cex.len();
            if opts.json {
                print_json(
                    "k-induction",
                    opts.semantics,
                    "reachable",
                    None,
                    Some(len),
                    &stats,
                );
            } else {
                print_witness(model, &cex);
            }
            return ExitCode::from(10);
        }
        InductionResult::Proved { k } => (
            BmcResult::Unreachable,
            format!("proved safe at induction depth {k}"),
        ),
        InductionResult::Exhausted { max_depth } => (
            BmcResult::Unknown(format!("inconclusive up to depth {max_depth}")),
            format!("inconclusive up to depth {max_depth}"),
        ),
        InductionResult::Unknown { reason } => (BmcResult::Unknown(reason.clone()), reason),
    };
    if !opts.quiet {
        eprintln!("sebmc: {detail}");
    }
    if opts.json {
        let (verdict, reason) = match &result {
            BmcResult::Unreachable => ("unreachable", Some(detail.as_str())),
            _ => ("unknown", Some(detail.as_str())),
        };
        print_json("k-induction", opts.semantics, verdict, reason, None, &stats);
    } else {
        match &result {
            BmcResult::Unreachable => println!("0"),
            _ => println!("2"),
        }
    }
    exit_for(&result)
}

fn batch_usage() -> ! {
    eprintln!(
        "usage: sebmc batch [jobs.txt] [--suite small|paper] [--engines LIST] \
         [--bound K] [--workers N] [--timeout-ms N] [--mem-mb N] [--max-job-mb N] \
         [--within] [--json] [--quiet]"
    );
    std::process::exit(2);
}

/// `sebmc batch`: drain a job list on the multi-worker checking
/// service and report the aggregate.
fn run_batch(args: Vec<String>) -> ExitCode {
    let mut file: Option<String> = None;
    let mut suite: Option<String> = None;
    let mut engines: Option<String> = None;
    let mut bound: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut mem_mb: Option<u64> = None;
    let mut max_job_mb: Option<u64> = None;
    let mut semantics = Semantics::Exactly;
    let mut json = false;
    let mut quiet = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => suite = Some(it.next().unwrap_or_else(|| batch_usage())),
            "--engines" => engines = Some(it.next().unwrap_or_else(|| batch_usage())),
            "--bound" => bound = Some(parse_num("bound", it.next()) as usize),
            "--workers" => workers = Some(parse_num("workers", it.next()) as usize),
            "--timeout-ms" => timeout_ms = Some(parse_num("timeout-ms", it.next())),
            "--mem-mb" => mem_mb = Some(parse_num("mem-mb", it.next())),
            "--max-job-mb" => max_job_mb = Some(parse_num("max-job-mb", it.next())),
            "--within" => semantics = Semantics::Within,
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => batch_usage(),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            _ => batch_usage(),
        }
    }
    let jobs: Vec<sebmc_repro::service::Job> = if let Some(path) = &file {
        // Jobs-file lines carry their own models, engines and bounds;
        // silently ignoring the suite flags would mislead.
        if suite.is_some() || engines.is_some() || bound.is_some() {
            eprintln!(
                "sebmc: --suite/--engines/--bound configure the built-in suite \
                 and cannot be combined with a job file"
            );
            return ExitCode::from(2);
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sebmc: cannot read job file '{path}': {e}");
                return ExitCode::from(2);
            }
        };
        match parse_job_file(&text) {
            Ok(jobs) => jobs
                .into_iter()
                .map(|mut j| {
                    // CLI budget flags are *defaults* for lines that
                    // set no limit of their own; --within applies to
                    // every job.
                    if j.budget.timeout.is_none() {
                        j.budget.timeout = timeout_ms.map(Duration::from_millis);
                    }
                    if j.budget.max_formula_bytes.is_none() {
                        j.budget.max_formula_bytes = mem_mb.map(|mb| mb as usize * 1024 * 1024);
                    }
                    if semantics == Semantics::Within {
                        j.semantics = Semantics::Within;
                    }
                    j
                })
                .collect(),
            Err(e) => {
                eprintln!("sebmc: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let kinds = match EngineKind::parse_list(engines.as_deref().unwrap_or("jsat,unroll")) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("sebmc: {e}");
                return ExitCode::from(2);
            }
        };
        let small = match suite.as_deref().unwrap_or("small") {
            "small" => true,
            "paper" => false,
            other => {
                eprintln!("sebmc: unknown suite '{other}' (expected small|paper)");
                return ExitCode::from(2);
            }
        };
        let budget = Budget {
            timeout: timeout_ms.map(Duration::from_millis),
            max_formula_bytes: mem_mb.map(|mb| mb as usize * 1024 * 1024),
            ..Budget::default()
        };
        suite_jobs(small, &kinds, bound.unwrap_or(6), &budget)
            .into_iter()
            .map(|j| j.with_semantics(semantics))
            .collect()
    };
    let mut config = match workers {
        Some(w) => ServiceConfig::with_workers(w),
        None => ServiceConfig::default(),
    };
    config.max_job_bytes = max_job_mb.map(|mb| mb as usize * 1024 * 1024);
    if !quiet {
        eprintln!(
            "sebmc: batch of {} jobs on {} workers",
            jobs.len(),
            config.workers.max(1)
        );
    }
    let mut svc = CheckService::new(config);
    for job in jobs {
        svc.submit(job);
    }
    let report = svc.run();
    if !quiet {
        for j in &report.jobs {
            let (verdict, reason) = j.verdict_parts();
            eprintln!(
                "sebmc: [{:>3}] {:<20} {:<12} {} wait {:?} solve {:?} effort {}",
                j.job_id,
                j.name,
                verdict,
                match (j.bound, reason) {
                    (Some(b), _) => format!("bound {b}"),
                    (None, Some(r)) => format!("({r})"),
                    (None, None) => format!("0..={} swept", j.bounds_checked.saturating_sub(1)),
                },
                j.queue_wait,
                j.solve_time,
                j.stats.solver_effort,
            );
        }
        eprintln!(
            "sebmc: {} reachable / {} unreachable / {} unknown in {:?} ({:.2} jobs/s)",
            report.reachable,
            report.unreachable,
            report.unknown,
            report.wall,
            report.jobs_per_sec()
        );
    }
    if json {
        println!("{}", report.to_json());
    }
    if report.unknown > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    // The `batch` subcommand has its own argument grammar.
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("batch") {
        raw.next();
        return run_batch(raw.collect());
    }
    let opts = parse_args();
    let bytes = match std::fs::read(&opts.path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("sebmc: cannot read '{}': {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let file = match aiger::parse_auto(&bytes) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sebmc: {e}");
            return ExitCode::from(2);
        }
    };
    let model = match aiger::aiger_to_model(&file, &opts.path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("sebmc: {e}");
            return ExitCode::from(2);
        }
    };
    if !opts.quiet {
        eprintln!(
            "sebmc: '{}' — {} latches, {} inputs, {} ANDs; engine {}, bound {}{} ({})",
            opts.path,
            model.num_state_vars(),
            model.num_inputs(),
            file.ands.len(),
            opts.engine,
            opts.bound,
            if opts.deepen { " (deepening)" } else { "" },
            opts.semantics
        );
    }

    if opts.engine == "k-induction" {
        return run_k_induction(&opts, &model);
    }

    let engine: Box<dyn Engine> = match opts.engine.as_str() {
        "jsat" => Box::new(JSat::default()),
        "unroll" => Box::new(UnrollSat::default()),
        "qbf-linear" => Box::new(QbfLinear::new(QbfBackend::Qdpll)),
        "qbf-squaring" => Box::new(QbfSquaring::new(QbfBackend::Expansion)),
        other => {
            eprintln!("sebmc: unknown engine '{other}'");
            return ExitCode::from(2);
        }
    };

    if opts.deepen {
        // One session, bounds 0..=K: solver state persists per bound.
        let mut session = engine.start(&model, opts.semantics, opts.budget.clone());
        let mut skipped = 0usize;
        for k in 0..=opts.bound {
            // An unsupported bound (iterative squaring only checks
            // powers of two) is not a budget failure: keep deepening
            // at the bounds the engine does support.
            if !session.supports_bound(k) {
                skipped += 1;
                continue;
            }
            let out = session.check_bound(k);
            match out.result {
                BmcResult::Unreachable => continue,
                _ => {
                    let total = session.cumulative_stats();
                    if !opts.quiet && out.result.is_reachable() {
                        eprintln!("sebmc: first reachable at bound {k}");
                    }
                    return report(&opts, &model, k, &out, &total);
                }
            }
        }
        let total = session.cumulative_stats();
        // Skipped (unsupported) bounds were not decided, so a clean
        // sweep with skips is Unknown, not Unreachable.
        let result = if skipped > 0 {
            BmcResult::Unknown(format!(
                "unreachable at every supported bound 0..={}, \
                 but {skipped} unsupported bounds were skipped",
                opts.bound
            ))
        } else {
            BmcResult::Unreachable
        };
        if !opts.quiet {
            eprintln!("sebmc: {result} (deepened 0..={})", opts.bound);
        }
        let out = BmcOutcome {
            result,
            stats: total.clone(),
        };
        report(&opts, &model, opts.bound, &out, &total)
    } else {
        let mut session = engine.start(&model, opts.semantics, opts.budget.clone());
        let out = session.check_bound(opts.bound);
        let total = session.cumulative_stats();
        report(&opts, &model, opts.bound, &out, &total)
    }
}
