//! Facade crate for the `sebmc` workspace — a from-scratch Rust
//! reproduction of *"Space-Efficient Bounded Model Checking"* (Katz,
//! Hanna, Dershowitz; DATE 2005).
//!
//! This crate simply re-exports the workspace members under stable
//! names so that examples and integration tests can use a single
//! dependency:
//!
//! * [`logic`] — literals, CNF, And-Inverter Graphs, Tseitin, DIMACS.
//! * [`sat`] — an incremental CDCL SAT solver (with streaming DRAT
//!   proof logging).
//! * [`proof`] — verdict certification: the binary-DRAT writer and the
//!   bounded-memory on-the-fly forward checker
//!   ([`StreamingChecker`](proof::StreamingChecker)/[`Certificate`](proof::Certificate)).
//! * [`qbf`] — prenex-CNF QBF representation and two QBF solvers.
//! * [`aiger`] — AIGER (`.aag`/`.aig`) reader and writer.
//! * [`model`] — symbolic transition systems and the benchmark suite.
//! * [`analysis`] — static model analysis: cone-of-influence
//!   reduction, constant-latch sweeping, unused-input elimination and
//!   witness lifting
//!   ([`analyze`](analysis::analyze)/[`reduce`](analysis::reduce)/[`Reconstruction`](analysis::Reconstruction)).
//! * [`bmc`] — the paper's contribution: the three bounded-reachability
//!   encodings and the special-purpose jSAT decision procedure, behind
//!   a session-based incremental engine API
//!   ([`Engine`](bmc::Engine)/[`Session`](bmc::Session)/[`Budget`](bmc::Budget)).
//! * [`service`] — the multi-worker checking service: a job queue over
//!   engine sessions with portfolio-level deepening, per-job/service
//!   cancellation and byte-budget admission control
//!   ([`CheckService`](service::CheckService)/[`Job`](service::Job)/[`ServiceReport`](service::ServiceReport)).
//! * [`telemetry`] — observability: the lock-free metrics registry,
//!   structured JSONL tracing, and solver progress introspection
//!   ([`Telemetry`](telemetry::Telemetry)/[`MetricsRegistry`](telemetry::MetricsRegistry)/[`ProgressSink`](telemetry::ProgressSink)).
//!
//! # Quickstart
//!
//! ```
//! use sebmc_repro::bmc::{Budget, Engine, JSat, Semantics};
//! use sebmc_repro::model::builders::counter_with_reset;
//!
//! let model = counter_with_reset(4);
//! // One session: formula (4) and the failed-state cache persist
//! // across bounds.
//! let mut session = JSat::default().start(&model, Semantics::Exactly, Budget::none());
//! assert!(session.check_bound(14).result.is_unreachable());
//! assert!(session.check_bound(15).result.is_reachable());
//! ```

pub use sebmc as bmc;
pub use sebmc_aiger as aiger;
pub use sebmc_analysis as analysis;
pub use sebmc_logic as logic;
pub use sebmc_model as model;
pub use sebmc_proof as proof;
pub use sebmc_qbf as qbf;
pub use sebmc_sat as sat;
pub use sebmc_service as service;
pub use sebmc_telemetry as telemetry;
