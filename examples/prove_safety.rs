//! Unbounded proofs with k-induction.
//!
//! Bounded model checking alone never *proves* safety — the paper's
//! introduction discusses induction-based methods as the complementary
//! technique (warning that the induction depth can be exponential).
//! This example proves two protocols safe for **all** depths and shows
//! the depth difference the paper alludes to.
//!
//! Run with:
//! ```text
//! cargo run --release --example prove_safety
//! ```

use std::time::Instant;

use sebmc_repro::bmc::{k_induction, Budget, InductionResult};
use sebmc_repro::model::builders::{peterson, traffic_light};

fn main() {
    for model in [traffic_light(), peterson()] {
        println!(
            "proving '{}' safe (target: {} state bits)…",
            model.name(),
            model.num_state_vars()
        );
        let start = Instant::now();
        match k_induction(&model, 32, &Budget::none()) {
            InductionResult::Proved { k } => {
                println!(
                    "  PROVED safe at every depth — induction depth {k}, {:?}\n",
                    start.elapsed()
                );
            }
            InductionResult::Falsified { cex } => {
                println!("  UNSAFE — counterexample of length {}\n", cex.len());
            }
            other => println!("  inconclusive: {other:?}\n"),
        }
    }
    println!(
        "note the depth gap: the interlocked traffic light is inductive almost\n\
         immediately, while Peterson needs depth 17 — the paper's caveat that\n\
         induction depth can grow with the model."
    );
}
