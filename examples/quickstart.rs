//! Quickstart: check one reachability property with all four engines.
//!
//! A 4-bit counter with reset must first reach its maximum value
//! (15) after exactly 15 steps. We ask each of the paper's four
//! procedures the same bounded question and print what they say.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use sebmc_repro::bmc::{
    BoundedChecker, Budget, JSat, QbfBackend, QbfLinear, QbfSquaring, Semantics, UnrollSat,
};
use sebmc_repro::model::builders::counter_with_reset;

fn main() {
    let model = counter_with_reset(4);
    println!(
        "model: {} ({} state bits, {} inputs, |TR| cone = {} AND gates)\n",
        model.name(),
        model.num_state_vars(),
        model.num_inputs(),
        model.tr_cone_size()
    );

    // The paper's per-instance budget, scaled down from 300 s.
    let budget = Budget {
        timeout: Some(Duration::from_secs(5)),
        max_formula_bytes: Some(40_000_000),
        ..Budget::default()
    };

    let mut engines: Vec<Box<dyn BoundedChecker>> = vec![
        Box::new(UnrollSat::with_budget(budget.clone())),
        Box::new(JSat::with_budget(budget.clone())),
        Box::new(QbfLinear::with_budget(QbfBackend::Qdpll, budget.clone())),
        Box::new(QbfSquaring::with_budget(QbfBackend::Expansion, budget)),
    ];

    for k in [8usize, 15, 16] {
        println!("bound k = {k} (exactly-k semantics):");
        for engine in &mut engines {
            let out = engine.check(&model, k, Semantics::Exactly);
            println!(
                "  {:<22} -> {:<22} [{:>8.1?}, formula {} lits, effort {}]",
                engine.name(),
                out.result.to_string(),
                out.stats.duration,
                out.stats.encode_lits,
                out.stats.solver_effort,
            );
            if let Some(trace) = out.result.witness() {
                println!("      witness states: {:?}", trace.packed_states());
                assert_eq!(model.check_trace(trace), Ok(()), "witness must replay");
            }
        }
        println!();
    }
    println!("note: the general-purpose QBF engines giving up is the paper's point —");
    println!("      its answer is the special-purpose jSAT procedure.");
}
