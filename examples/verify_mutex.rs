//! Bounded verification of Peterson's mutual-exclusion protocol.
//!
//! The workload the paper's introduction motivates: prove that a
//! protocol never reaches a bad state (here: both processes in their
//! critical section) for every bound up to a horizon, using the
//! space-efficient jSAT procedure, and cross-check with classical
//! SAT-based BMC. A deliberately broken variant shows what a
//! counterexample looks like.
//!
//! Run with:
//! ```text
//! cargo run --release --example verify_mutex
//! ```

use sebmc_repro::bmc::{Budget, Engine, JSat, Semantics, UnrollSat};
use sebmc_repro::model::{builders::peterson, Model, ModelBuilder};

/// A broken "mutex": both processes may enter whenever they like.
fn broken_mutex() -> Model {
    let mut b = ModelBuilder::new("broken-mutex");
    let c0 = b.state_var("crit0");
    let c1 = b.state_var("crit1");
    let want0 = b.input("want0");
    let want1 = b.input("want1");
    b.set_next(0, want0);
    b.set_next(1, want1);
    let both = b.aig_mut().and(c0, c1);
    b.set_target(both);
    b.build()
        .expect("broken mutex is (structurally) well-formed")
}

fn main() {
    let horizon = 12;

    println!("== Peterson's protocol: target = both processes in the critical section ==");
    let model = peterson();
    // One session per engine for the whole horizon: formula (4) plus
    // the failed-state cache persist for jSAT, frames and learnt
    // clauses persist for the incremental unroller.
    let mut jsat = JSat::default().start(&model, Semantics::Exactly, Budget::none());
    let mut unroll = UnrollSat::default().start(&model, Semantics::Exactly, Budget::none());
    let mut all_safe = true;
    for k in 0..=horizon {
        let a = jsat.check_bound(k);
        let b = unroll.check_bound(k);
        assert!(
            a.result.agrees_with(&b.result),
            "engines disagree at bound {k}"
        );
        if a.result.is_reachable() {
            all_safe = false;
            println!("  bound {k:>2}: VIOLATION");
        } else {
            println!(
                "  bound {k:>2}: safe (jsat: {} conflicts, unroll: {} conflicts)",
                a.stats.solver_effort, b.stats.solver_effort
            );
        }
    }
    assert!(all_safe);
    let (jt, ut) = (jsat.cumulative_stats(), unroll.cumulative_stats());
    println!(
        "  mutual exclusion holds for every bound up to {horizon} \
         (session totals: jsat {} conflicts / peak {} B, unroll {} conflicts / peak {} B).\n",
        jt.solver_effort, jt.peak_formula_bytes, ut.solver_effort, ut.peak_formula_bytes
    );

    println!("== Broken variant: no handshake at all ==");
    let broken = broken_mutex();
    let mut jsat = JSat::default().start(&broken, Semantics::Within, Budget::none());
    for k in 0..=4 {
        let out = jsat.check_bound(k);
        if let Some(trace) = out.result.witness() {
            println!("  bound {k}: violated, witness of length {}:", trace.len());
            for (i, s) in trace.states.iter().enumerate() {
                println!(
                    "    step {i}: crit0={} crit1={}",
                    u8::from(s[0]),
                    u8::from(s[1])
                );
            }
            broken
                .check_trace(trace)
                .expect("counterexample must replay");
            println!("  counterexample replayed through the simulator: OK");
            return;
        }
        println!("  bound {k}: safe so far");
    }
    unreachable!("the broken mutex must fail within 4 steps");
}
