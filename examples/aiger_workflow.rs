//! HWMCC-style AIGER workflow.
//!
//! Exports a benchmark circuit to AIGER (both the ASCII `aag` and the
//! binary `aig` formats), re-imports it, runs bounded model checking on
//! the round-tripped circuit, and replays the witness. This is the
//! interoperability path a downstream user of this library would take
//! with real hardware designs.
//!
//! Run with:
//! ```text
//! cargo run --release --example aiger_workflow
//! ```

use sebmc_repro::aiger;
use sebmc_repro::bmc::{find_shortest_witness, Budget, DeepeningResult, JSat};
use sebmc_repro::model::builders::round_robin_arbiter;

fn main() {
    let model = round_robin_arbiter(4);
    println!(
        "exporting '{}' ({} latches, {} inputs) to AIGER…",
        model.name(),
        model.num_state_vars(),
        model.num_inputs()
    );

    let file = aiger::model_to_aiger(&model).expect("arbiter init is a constant cube");
    let ascii = aiger::to_ascii_string(&file);
    let binary = aiger::to_binary_vec(&file).expect("canonical order");
    println!(
        "  aag: {} bytes, aig: {} bytes ({} AND gates)\n",
        ascii.len(),
        binary.len(),
        file.ands.len()
    );
    println!("--- {} first lines of the aag file ---", 8);
    for line in ascii.lines().take(8) {
        println!("  {line}");
    }
    println!("  …\n");

    // Read the *binary* flavour back and check both parse to the same
    // circuit.
    let parsed_bin = aiger::parse_binary(&binary).expect("binary parses");
    let parsed_ascii = aiger::parse_ascii(&ascii).expect("ascii parses");
    assert_eq!(parsed_bin, parsed_ascii);
    let back = aiger::aiger_to_model(&parsed_bin, "arbiter-from-aiger").expect("convert");

    println!("running iterative-deepening BMC (one jSAT session) on the re-imported circuit…");
    match find_shortest_witness(&JSat::default(), &back, 16, Budget::none()) {
        DeepeningResult::FoundAt {
            bound,
            outcome,
            total,
        } => {
            let trace = outcome.result.witness().expect("jsat yields witnesses");
            println!("  grant to the last client first reachable at bound {bound}");
            println!(
                "  session totals: {} bounds, {} solver conflicts, peak {} B",
                total.bounds_checked, total.solver_effort, total.peak_formula_bytes
            );
            println!("  witness (packed states): {:?}", trace.packed_states());
            back.check_trace(trace).expect("witness replays");
            println!("  witness replayed through the simulator: OK");
        }
        other => panic!("expected a witness, got {other:?}"),
    }
}
