//! The space argument, live: formula size as the bound grows.
//!
//! Prints the size of the formula each formulation keeps in memory for
//! bounds 1..=32 on one mid-size circuit — a miniature of the paper's
//! §2 analysis (experiment E2 in EXPERIMENTS.md runs the full version):
//!
//! * formulation (1) grows by one `TR` copy per bound,
//! * formulation (2) grows by `O(n)` per bound with a constant number
//!   of universals,
//! * formulation (3) exists only at power-of-two bounds, with `log₂ k`
//!   levels,
//! * jSAT's formula (4) does not grow at all.
//!
//! Run with:
//! ```text
//! cargo run --release --example space_demo
//! ```

use sebmc_repro::bmc::{
    encode_qbf_linear, encode_qbf_squaring, encode_unrolled, BoundedChecker, JSat, Semantics,
};
use sebmc_repro::model::builders::gray_counter;

fn main() {
    let model = gray_counter(5);
    println!(
        "model: {} (n = {} state bits, |TR| cone = {} AND gates)\n",
        model.name(),
        model.num_state_vars(),
        model.tr_cone_size()
    );
    println!(
        "{:>5} | {:>12} | {:>12} {:>6} | {:>12} {:>6} {:>6} | {:>12}",
        "k", "(1) unroll", "(2) linear", "#∀", "(3) squaring", "#∀", "alt", "(4) jSAT"
    );
    println!("{}", "-".repeat(92));

    let mut jsat = JSat::default();
    for k in 1..=32usize {
        let unrolled = encode_unrolled(&model, k, Semantics::Exactly);
        let linear = encode_qbf_linear(&model, k);
        let (sq_lits, sq_univ, sq_alt) = if k.is_power_of_two() {
            let sq = encode_qbf_squaring(&model, k);
            (
                format!("{}", sq.formula.matrix().num_literals()),
                format!("{}", sq.formula.num_universals()),
                format!("{}", sq.formula.num_alternations()),
            )
        } else {
            ("-".into(), "-".into(), "-".into())
        };
        // jSAT's static formula size is in its run stats; use bound 1
        // mechanics (the formula is bound-independent).
        let js = jsat.check(&model, k.min(3), Semantics::Exactly).stats;
        println!(
            "{:>5} | {:>12} | {:>12} {:>6} | {:>12} {:>6} {:>6} | {:>12}",
            k,
            unrolled.cnf.num_literals(),
            linear.formula.matrix().num_literals(),
            linear.formula.num_universals(),
            sq_lits,
            sq_univ,
            sq_alt,
            js.encode_lits,
        );
    }
    println!(
        "\nliterals ≈ bytes/4; note column (1) growing by a TR copy per row while\n(2) grows by O(n), (3) appears only at powers of two, and (4) is flat."
    );
}
