//! The checking service: a queue of jobs over engine sessions.
//!
//! Submits the small built-in suite twice — once as single-engine
//! deepening jobs, once as per-bound jsat/unroll portfolio races —
//! then drains everything on a 2-worker pool and prints the aggregate
//! `ServiceReport` accounting (queue wait vs solve time, racing effort
//! honestly summed over winners *and* cancelled losers).
//!
//! Run with:
//! ```text
//! cargo run --release --example service_batch
//! ```

use sebmc_repro::bmc::Budget;
use sebmc_repro::service::{suite_jobs, CheckService, EngineKind, Job, ServiceConfig};

fn main() {
    let mut svc =
        CheckService::new(ServiceConfig::with_workers(2).with_max_job_bytes(64 * 1024 * 1024));

    // Single-engine jobs: one live jSAT session per model, deepened
    // bound-by-bound.
    for job in suite_jobs(true, &[EngineKind::Jsat], 6, &Budget::none()) {
        svc.submit(job);
    }
    // Portfolio jobs: each bound raced across live jsat + unroll
    // sessions; the first decided verdict cancels that bound's loser,
    // whose session survives into the next bound.
    for job in suite_jobs(
        true,
        &[EngineKind::Jsat, EngineKind::Unroll],
        6,
        &Budget::none(),
    ) {
        let name = format!("{}-portfolio", job.name);
        svc.submit(Job { name, ..job });
    }

    println!("submitted {} jobs; running…\n", svc.queued());
    let report = svc.run();

    println!(
        "{:<28} {:<12} {:>7} {:>10} {:>10}  winners",
        "job", "verdict", "bound", "wait", "solve"
    );
    for j in &report.jobs {
        let (verdict, _) = j.verdict_parts();
        let winners: Vec<&str> = j.winners.iter().map(|(_, e)| *e).collect();
        println!(
            "{:<28} {:<12} {:>7} {:>9.1?} {:>9.1?}  {}",
            j.name,
            verdict,
            j.bound.map_or("—".into(), |b| b.to_string()),
            j.queue_wait,
            j.solve_time,
            if winners.is_empty() {
                "—".to_string()
            } else {
                winners.join(",")
            }
        );
    }
    println!(
        "\n{} jobs on {} workers in {:?} ({:.1} jobs/s): \
         {} reachable, {} unreachable, {} unknown",
        report.jobs.len(),
        report.workers,
        report.wall,
        report.jobs_per_sec(),
        report.reachable,
        report.unreachable,
        report.unknown
    );
    println!(
        "total racing effort: {} conflicts/decisions, {} bound checks, peak formula {} B",
        report.total.solver_effort, report.total.bounds_checked, report.total.peak_formula_bytes
    );
    assert_eq!(report.unknown, 0, "the small suite decides everywhere");
}
